//! Linear expressions with operator overloading.

use std::collections::BTreeMap;
use std::ops::{Add, Mul, Neg, Sub};

/// Opaque handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Dense index of this variable within its model.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression: a sum of `coefficient * variable` terms plus a
/// constant.
///
/// Expressions are built with ordinary arithmetic:
///
/// ```
/// use hilp_model::Model;
///
/// let mut model = Model::minimize();
/// let x = model.continuous("x", 0.0, 1.0);
/// let y = model.continuous("y", 0.0, 1.0);
/// let expr = 2.0 * x - y + 3.0;
/// assert_eq!(expr.constant(), 3.0);
/// assert_eq!(expr.coefficient(x), 2.0);
/// assert_eq!(expr.coefficient(y), -1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    pub(crate) terms: BTreeMap<usize, f64>,
    pub(crate) constant: f64,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    #[must_use]
    pub fn constant_expr(value: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// The constant part of the expression.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The coefficient of a variable (zero when absent).
    #[must_use]
    pub fn coefficient(&self, var: Var) -> f64 {
        self.terms.get(&var.0).copied().unwrap_or(0.0)
    }

    /// Iterates over the `(variable, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|(&i, &c)| (Var(i), c))
    }

    /// Number of variables with a nonzero coefficient.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the expression has no variable terms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    pub(crate) fn add_term(&mut self, var: Var, coeff: f64) {
        let entry = self.terms.entry(var.0).or_insert(0.0);
        *entry += coeff;
        if *entry == 0.0 {
            self.terms.remove(&var.0);
        }
    }

    /// Sums an iterator of expressions.
    #[must_use]
    pub fn sum<I>(exprs: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<LinExpr>,
    {
        let mut acc = LinExpr::zero();
        for e in exprs {
            acc = acc + e.into();
        }
        acc
    }
}

impl From<Var> for LinExpr {
    fn from(var: Var) -> Self {
        let mut e = LinExpr::zero();
        e.add_term(var, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(value: f64) -> Self {
        LinExpr::constant_expr(value)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (&i, &c) in &rhs.terms {
            self.add_term(Var(i), c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        if rhs == 0.0 {
            return LinExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

// Var-based sugar: every combination lowers to LinExpr arithmetic.

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        self + LinExpr::from(rhs)
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        self - LinExpr::from(rhs)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Sub<LinExpr> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Add for Var {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) + LinExpr::from(rhs)
    }
}

impl Sub for Var {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) - LinExpr::from(rhs)
    }
}

impl Add<f64> for Var {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Sub<f64> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) * rhs
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Var) -> LinExpr {
        LinExpr::from(rhs) * self
    }
}

impl Neg for Var {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

impl Add<Var> for f64 {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(rhs) + self
    }
}

impl Sub<Var> for f64 {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        -LinExpr::from(rhs) + self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_combines_terms() {
        let x = Var(0);
        let y = Var(1);
        let e = 2.0 * x + 3.0 * y - x + 1.5;
        assert_eq!(e.coefficient(x), 1.0);
        assert_eq!(e.coefficient(y), 3.0);
        assert_eq!(e.constant(), 1.5);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn cancelling_terms_are_removed() {
        let x = Var(0);
        let e = 2.0 * x - 2.0 * x;
        assert!(e.is_empty());
        assert_eq!(e.coefficient(x), 0.0);
    }

    #[test]
    fn negation_flips_everything() {
        let x = Var(0);
        let e = -(2.0 * x + 1.0);
        assert_eq!(e.coefficient(x), -2.0);
        assert_eq!(e.constant(), -1.0);
    }

    #[test]
    fn scaling_by_zero_clears_expression() {
        let x = Var(0);
        let e = (2.0 * x + 1.0) * 0.0;
        assert!(e.is_empty());
        assert_eq!(e.constant(), 0.0);
    }

    #[test]
    fn sum_folds_mixed_items() {
        let x = Var(0);
        let y = Var(1);
        let total = LinExpr::sum(vec![LinExpr::from(x), 2.0 * y, LinExpr::constant_expr(4.0)]);
        assert_eq!(total.coefficient(x), 1.0);
        assert_eq!(total.coefficient(y), 2.0);
        assert_eq!(total.constant(), 4.0);
    }

    #[test]
    fn scalar_on_either_side() {
        let x = Var(0);
        let left = 1.0 + x;
        let right = x + 1.0;
        assert_eq!(left, right);
        let diff = 5.0 - x;
        assert_eq!(diff.coefficient(x), -1.0);
        assert_eq!(diff.constant(), 5.0);
    }
}
