//! The model container and its lowering to `hilp-milp`.

use std::error::Error;
use std::fmt;

use hilp_lp::{Objective, Relation};
use hilp_milp::{MilpError, MilpProblem, MilpStatus, SolveLimits};

use crate::expr::{LinExpr, Var};

/// Optimization direction of a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimize the objective expression.
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Continuous,
    Integer,
    Binary,
}

#[derive(Debug, Clone)]
struct VarDef {
    name: String,
    kind: VarKind,
    lower: f64,
    upper: f64,
}

#[derive(Debug, Clone)]
struct ConstraintDef {
    expr: LinExpr,
    relation: Relation,
}

/// Errors produced while solving a [`Model`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The underlying MILP machinery failed.
    Milp(MilpError),
    /// The model is infeasible.
    Infeasible,
    /// The search stopped before finding any feasible assignment.
    NoSolution,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Milp(e) => write!(f, "milp error: {e}"),
            ModelError::Infeasible => write!(f, "model is infeasible"),
            ModelError::NoSolution => write!(f, "no feasible assignment found within limits"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Milp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MilpError> for ModelError {
    fn from(e: MilpError) -> Self {
        ModelError::Milp(e)
    }
}

/// Result of solving a [`Model`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSolution {
    values: Vec<f64>,
    objective_value: f64,
    bound: f64,
    gap: f64,
    proved_optimal: bool,
    nodes_explored: usize,
}

impl ModelSolution {
    /// Value of a variable in the incumbent.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    #[must_use]
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// Value of a variable rounded to the nearest integer.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    #[must_use]
    pub fn int_value(&self, var: Var) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// Evaluates a linear expression under the incumbent.
    #[must_use]
    pub fn eval(&self, expr: &LinExpr) -> f64 {
        expr.constant()
            + expr
                .terms()
                .map(|(v, c)| c * self.values[v.index()])
                .sum::<f64>()
    }

    /// Objective value of the incumbent.
    #[must_use]
    pub fn objective_value(&self) -> f64 {
        self.objective_value
    }

    /// Best proven objective bound (see [`hilp_milp::MilpSolution::bound`]).
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Relative optimality gap between incumbent and proven bound.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.gap
    }

    /// Whether the incumbent was proven optimal.
    #[must_use]
    pub fn proved_optimal(&self) -> bool {
        self.proved_optimal
    }

    /// Number of branch-and-bound nodes explored.
    #[must_use]
    pub fn nodes_explored(&self) -> usize {
        self.nodes_explored
    }
}

/// A mixed-integer linear model with named variables and logical sugar.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Model {
    sense: Sense,
    vars: Vec<VarDef>,
    constraints: Vec<ConstraintDef>,
    objective: LinExpr,
}

impl Model {
    /// Creates an empty minimization model.
    #[must_use]
    pub fn minimize() -> Self {
        Model::new(Sense::Minimize)
    }

    /// Creates an empty maximization model.
    #[must_use]
    pub fn maximize() -> Self {
        Model::new(Sense::Maximize)
    }

    /// Creates an empty model with the given sense.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::zero(),
        }
    }

    /// Optimization direction.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.vars.len()
    }

    /// Number of lowered constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn name(&self, var: Var) -> &str {
        &self.vars[var.index()].name
    }

    /// Adds a continuous variable with the given bounds.
    pub fn continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.push_var(name.into(), VarKind::Continuous, lower, upper)
    }

    /// Adds an integer variable with the given bounds.
    pub fn integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.push_var(name.into(), VarKind::Integer, lower, upper)
    }

    /// Adds a binary (0/1) variable.
    pub fn binary(&mut self, name: impl Into<String>) -> Var {
        self.push_var(name.into(), VarKind::Binary, 0.0, 1.0)
    }

    fn push_var(&mut self, name: String, kind: VarKind, lower: f64, upper: f64) -> Var {
        self.vars.push(VarDef {
            name,
            kind,
            lower,
            upper,
        });
        Var(self.vars.len() - 1)
    }

    /// Sets the objective expression.
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// Adds the constraint `lhs <= rhs`.
    pub fn le(&mut self, lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) {
        self.push_constraint(lhs.into() - rhs.into(), Relation::Le);
    }

    /// Adds the constraint `lhs >= rhs`.
    pub fn ge(&mut self, lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) {
        self.push_constraint(lhs.into() - rhs.into(), Relation::Ge);
    }

    /// Adds the constraint `lhs == rhs`.
    pub fn eq(&mut self, lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) {
        self.push_constraint(lhs.into() - rhs.into(), Relation::Eq);
    }

    fn push_constraint(&mut self, expr: LinExpr, relation: Relation) {
        self.constraints.push(ConstraintDef { expr, relation });
    }

    /// Adds the implication `guard = 1  =>  lhs <= rhs` via big-M lowering:
    /// `lhs - rhs <= M * (1 - guard)`.
    ///
    /// `big_m` must be an upper bound on `lhs - rhs` over the feasible box.
    pub fn implies_le(
        &mut self,
        guard: Var,
        lhs: impl Into<LinExpr>,
        rhs: impl Into<LinExpr>,
        big_m: f64,
    ) {
        let expr = lhs.into() - rhs.into() + big_m * guard;
        self.push_constraint(expr - big_m, Relation::Le);
    }

    /// Adds the disjunction `lhs1 <= rhs1  OR  lhs2 <= rhs2` by introducing
    /// a fresh binary selector and two big-M implications. Returns the
    /// selector (1 selects the first disjunct).
    ///
    /// This is exactly the classic lowering of the job-shop
    /// *non-interference* constraint (paper Equation 3): two phases mapped
    /// to the same core cluster must not overlap, i.e. one finishes before
    /// the other starts or vice versa.
    pub fn either_or(
        &mut self,
        lhs1: impl Into<LinExpr>,
        rhs1: impl Into<LinExpr>,
        lhs2: impl Into<LinExpr>,
        rhs2: impl Into<LinExpr>,
        big_m: f64,
    ) -> Var {
        let selector = self.binary(format!("or_{}", self.vars.len()));
        // selector = 1 -> first disjunct must hold; selector = 0 -> second:
        //   lhs1 - rhs1 <= M * (1 - selector)
        //   lhs2 - rhs2 <= M * selector
        self.implies_le(selector, lhs1, rhs1, big_m);
        let expr = lhs2.into() - rhs2.into() - big_m * selector;
        self.push_constraint(expr, Relation::Le);
        selector
    }

    /// Lowers the model and solves it with branch and bound.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] when the model has no feasible
    /// assignment, [`ModelError::NoSolution`] when limits stopped the search
    /// before an incumbent was found, and propagates solver failures.
    pub fn solve(&self, limits: &SolveLimits) -> Result<ModelSolution, ModelError> {
        let objective = match self.sense {
            Sense::Minimize => Objective::Minimize,
            Sense::Maximize => Objective::Maximize,
        };
        let mut milp = MilpProblem::new(objective);
        let mut handles = Vec::with_capacity(self.vars.len());
        for (i, def) in self.vars.iter().enumerate() {
            let cost = self.objective.coefficient(Var(i));
            let handle = match def.kind {
                VarKind::Continuous => milp.add_continuous(cost),
                VarKind::Integer => milp.add_integer(cost),
                VarKind::Binary => milp.add_binary(cost),
            };
            if def.kind != VarKind::Binary {
                milp.set_bounds(handle, def.lower, def.upper)?;
            }
            handles.push(handle);
        }
        for c in &self.constraints {
            let terms: Vec<_> = c
                .expr
                .terms()
                .map(|(v, coeff)| (handles[v.index()], coeff))
                .collect();
            milp.add_constraint(terms, c.relation, -c.expr.constant())?;
        }

        let sol = milp.solve(limits)?;
        match sol.status() {
            MilpStatus::Infeasible => Err(ModelError::Infeasible),
            MilpStatus::Unknown => Err(ModelError::NoSolution),
            MilpStatus::Optimal | MilpStatus::Feasible => {
                let constant = self.objective.constant();
                Ok(ModelSolution {
                    values: sol.values().to_vec(),
                    objective_value: sol.objective_value() + constant,
                    bound: sol.bound() + constant,
                    gap: sol.gap(),
                    proved_optimal: sol.status() == MilpStatus::Optimal,
                    nodes_explored: sol.nodes_explored(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_integer_model() {
        let mut m = Model::maximize();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        m.set_objective(x + y);
        m.le(2.0 * x + y, 7.0);
        m.le(x + 3.0 * y, 9.0);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        assert!((sol.objective_value() - 4.0).abs() < 1e-6);
        assert!(sol.proved_optimal());
        assert_eq!(sol.gap(), 0.0);
    }

    #[test]
    fn objective_constant_is_preserved() {
        let mut m = Model::minimize();
        let x = m.integer("x", 2.0, 5.0);
        m.set_objective(x + 10.0);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        assert!((sol.objective_value() - 12.0).abs() < 1e-6);
        assert!((sol.bound() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_model_is_reported() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 1.0);
        m.ge(x, 2.0);
        let err = m.solve(&SolveLimits::default()).unwrap_err();
        assert_eq!(err, ModelError::Infeasible);
    }

    #[test]
    fn implies_le_binds_only_when_guard_is_set() {
        // min x subject to (g=1 => x >= 5), maximize-free check via both
        // guard polarities.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 100.0);
        let g = m.binary("g");
        m.eq(g, 1.0);
        // g=1 => 5 <= x, i.e. 5 - x <= 0.
        m.implies_le(g, 5.0 - x, 0.0, 200.0);
        m.set_objective(x);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        assert!((sol.value(x) - 5.0).abs() < 1e-6);

        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 100.0);
        let g = m.binary("g");
        m.eq(g, 0.0);
        m.implies_le(g, 5.0 - x, 0.0, 200.0);
        m.set_objective(x);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        assert!(sol.value(x).abs() < 1e-6);
    }

    #[test]
    fn either_or_models_disjunctive_scheduling() {
        // Two unit tasks on one machine: s1 + 1 <= s2 OR s2 + 1 <= s1.
        // Minimizing the makespan proxy s1 + s2 forces starts {0, 1}.
        let mut m = Model::minimize();
        let s1 = m.integer("s1", 0.0, 10.0);
        let s2 = m.integer("s2", 0.0, 10.0);
        m.either_or(s1 + 1.0, s2, s2 + 1.0, s1, 100.0);
        m.set_objective(s1 + s2);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        let a = sol.int_value(s1);
        let b = sol.int_value(s2);
        assert!((a - b).abs() >= 1, "tasks must not overlap: {a}, {b}");
        assert_eq!(a + b, 1);
    }

    #[test]
    fn eval_matches_solution_values() {
        let mut m = Model::maximize();
        let x = m.integer("x", 0.0, 3.0);
        m.set_objective(2.0 * x);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        let expr = 2.0 * x + 1.0;
        assert!((sol.eval(&expr) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn names_round_trip() {
        let mut m = Model::minimize();
        let x = m.continuous("start_a0", 0.0, 1.0);
        assert_eq!(m.name(x), "start_a0");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::expr::LinExpr;

    #[test]
    fn sense_and_counters_are_exposed() {
        let mut m = Model::maximize();
        assert_eq!(m.sense(), Sense::Maximize);
        let x = m.continuous("x", 0.0, 1.0);
        let y = m.binary("y");
        m.le(x + y, 1.0);
        m.ge(x, 0.2);
        assert_eq!(m.num_variables(), 2);
        assert_eq!(m.num_constraints(), 2);
    }

    #[test]
    fn ge_constraints_bind() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 100.0);
        m.ge(x, 42.0);
        m.set_objective(x);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        assert!((sol.value(x) - 42.0).abs() < 1e-6);
    }

    #[test]
    fn nodes_explored_is_reported() {
        let mut m = Model::maximize();
        let x = m.integer("x", 0.0, 9.0);
        let y = m.integer("y", 0.0, 9.0);
        m.le(2.0 * x + 2.0 * y, 9.0);
        m.set_objective(x + y);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        assert!(sol.nodes_explored() >= 1);
        assert!((sol.objective_value() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn bound_never_beaten_by_objective() {
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..6).map(|i| m.binary(format!("b{i}"))).collect();
        let total = LinExpr::sum(vars.iter().map(|&v| LinExpr::from(v)));
        m.le(total.clone(), 3.5);
        m.set_objective(total);
        let sol = m.solve(&SolveLimits::default()).unwrap();
        assert!(sol.bound() >= sol.objective_value() - 1e-9);
        assert!((sol.objective_value() - 3.0).abs() < 1e-6);
    }
}
