//! A synthetic mobile-SoC workload.
//!
//! The paper motivates HILP with mobile SoCs ("leading mobile SoCs combine
//! many tens of DSAs with conventional CPU cores and GPUs") but evaluates
//! on Rodinia because it offers CPU *and* GPU implementations to profile.
//! This module provides a second, fully synthetic workload family shaped
//! like a phone's steady-state mix — camera ISP, neural inference, video
//! encode, audio, UI composition, and telemetry — to demonstrate that
//! nothing in the pipeline is Rodinia-specific.
//!
//! The numbers are *not* measurements; they are plausible per-frame-batch
//! figures chosen so the workload exercises the interesting regimes: two
//! accelerator-hungry applications (ISP, NN), one bandwidth-heavy stream
//! (video), and several CPU-bound utilities. All values are documented
//! here and nowhere else, so treat them as a modeling example.

use crate::workload::{Application, GpuProfile, Phase, PhaseKind, Workload};

/// One synthetic mobile application blueprint.
#[derive(Debug, Clone, PartialEq)]
pub struct MobileApp {
    /// Application name (doubles as the DSA key for its compute phase).
    pub name: &'static str,
    /// Setup time on one CPU core (s).
    pub setup_s: f64,
    /// Compute time on one CPU core (s).
    pub compute_cpu_s: f64,
    /// Compute time on the 14-SM GPU slice (s); `None` for CPU-only apps.
    pub compute_gpu_s: Option<f64>,
    /// GPU-time scaling exponent versus SM count.
    pub time_exponent: f64,
    /// Compute bandwidth at 14 SMs (GB/s).
    pub bandwidth_gbps: f64,
    /// Bandwidth scaling exponent versus SM count.
    pub bandwidth_exponent: f64,
    /// Teardown time on one CPU core (s).
    pub teardown_s: f64,
}

/// The blueprint set: six applications covering accelerator-hungry,
/// bandwidth-heavy, and CPU-bound behaviour.
#[must_use]
pub fn blueprints() -> &'static [MobileApp] {
    const APPS: [MobileApp; 6] = [
        MobileApp {
            name: "ISP",
            setup_s: 0.4,
            compute_cpu_s: 95.0,
            compute_gpu_s: Some(3.0),
            time_exponent: -0.95,
            bandwidth_gbps: 120.0,
            bandwidth_exponent: 0.9,
            teardown_s: 0.3,
        },
        MobileApp {
            name: "NN",
            setup_s: 1.2,
            compute_cpu_s: 140.0,
            compute_gpu_s: Some(4.5),
            time_exponent: -0.9,
            bandwidth_gbps: 90.0,
            bandwidth_exponent: 0.85,
            teardown_s: 0.2,
        },
        MobileApp {
            name: "VID",
            setup_s: 0.8,
            compute_cpu_s: 60.0,
            compute_gpu_s: Some(6.0),
            time_exponent: -0.5,
            bandwidth_gbps: 180.0,
            bandwidth_exponent: 0.95,
            teardown_s: 0.6,
        },
        MobileApp {
            name: "AUD",
            setup_s: 0.1,
            compute_cpu_s: 12.0,
            compute_gpu_s: Some(2.0),
            time_exponent: -0.2,
            bandwidth_gbps: 4.0,
            bandwidth_exponent: 0.3,
            teardown_s: 0.1,
        },
        MobileApp {
            name: "UI",
            setup_s: 0.3,
            compute_cpu_s: 25.0,
            compute_gpu_s: Some(1.5),
            time_exponent: -0.6,
            bandwidth_gbps: 40.0,
            bandwidth_exponent: 0.7,
            teardown_s: 0.2,
        },
        MobileApp {
            name: "TEL",
            setup_s: 0.2,
            compute_cpu_s: 8.0,
            compute_gpu_s: None,
            time_exponent: 0.0,
            bandwidth_gbps: 1.0,
            bandwidth_exponent: 0.0,
            teardown_s: 0.2,
        },
    ];
    &APPS
}

/// DSA allocation order for the mobile workload (descending CPU compute
/// time, mirroring the paper's rule): NN, ISP, VID, UI, AUD.
#[must_use]
pub fn dsa_priority_order() -> Vec<&'static str> {
    let mut order: Vec<&MobileApp> = blueprints()
        .iter()
        .filter(|a| a.compute_gpu_s.is_some())
        .collect();
    order.sort_by(|x, y| {
        y.compute_cpu_s
            .partial_cmp(&x.compute_cpu_s)
            .expect("finite blueprint data")
    });
    order.into_iter().map(|a| a.name).collect()
}

/// Builds the mobile workload: one instance of each blueprint.
#[must_use]
pub fn mobile_workload() -> Workload {
    let applications = blueprints()
        .iter()
        .map(|b| {
            let accel = b.compute_gpu_s.map(|gpu_s| GpuProfile {
                seconds_at_14sm: gpu_s,
                time_exponent: b.time_exponent,
                bandwidth_at_14sm_gbps: b.bandwidth_gbps,
                bandwidth_exponent: b.bandwidth_exponent,
            });
            let compute_volume = b.compute_gpu_s.map_or(0.0, |g| g * b.bandwidth_gbps);
            let compute_cpu_bw = if b.compute_cpu_s > 0.0 {
                compute_volume / b.compute_cpu_s
            } else {
                0.0
            };
            let phases = vec![
                Phase {
                    name: format!("{}.setup", b.name),
                    kind: PhaseKind::Setup,
                    cpu_seconds: Some(b.setup_s),
                    cpu_parallel: false,
                    accel: None,
                    gpu_eligible: false,
                    dsa_key: None,
                    cpu_bandwidth_gbps: 1.0,
                },
                Phase {
                    name: format!("{}.compute", b.name),
                    kind: PhaseKind::Compute,
                    cpu_seconds: Some(b.compute_cpu_s),
                    cpu_parallel: true,
                    gpu_eligible: accel.is_some(),
                    dsa_key: accel.as_ref().map(|_| b.name.to_string()),
                    accel,
                    cpu_bandwidth_gbps: compute_cpu_bw.max(0.5),
                },
                Phase {
                    name: format!("{}.teardown", b.name),
                    kind: PhaseKind::Teardown,
                    cpu_seconds: Some(b.teardown_s),
                    cpu_parallel: false,
                    accel: None,
                    gpu_eligible: false,
                    dsa_key: None,
                    cpu_bandwidth_gbps: 1.0,
                },
            ];
            Application {
                name: b.name.to_string(),
                phases,
                dependencies: vec![(0, 1), (1, 2)],
                start_dependencies: Vec::new(),
            }
        })
        .collect();
    Workload::new("Mobile", applications)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_six_three_phase_apps() {
        let w = mobile_workload();
        assert_eq!(w.applications().len(), 6);
        assert_eq!(w.num_phases(), 18);
    }

    #[test]
    fn telemetry_is_cpu_only() {
        let w = mobile_workload();
        let tel = w
            .applications()
            .iter()
            .find(|a| a.name == "TEL")
            .expect("TEL exists");
        assert!(tel.phases[1].accel.is_none());
        assert!(!tel.phases[1].gpu_eligible);
        assert!(tel.phases[1].dsa_key.is_none());
    }

    #[test]
    fn dsa_order_prioritizes_heavy_compute() {
        let order = dsa_priority_order();
        assert_eq!(&order[..2], &["NN", "ISP"]);
        assert!(!order.contains(&"TEL"), "CPU-only apps get no DSA");
    }

    #[test]
    fn sequential_baseline_sums_blueprint_times() {
        let expected: f64 = blueprints()
            .iter()
            .map(|b| b.setup_s + b.compute_cpu_s + b.teardown_s)
            .sum();
        assert!((mobile_workload().sequential_cpu_seconds() - expected).abs() < 1e-9);
    }

    #[test]
    fn compute_bandwidth_conserves_volume() {
        let w = mobile_workload();
        let isp = &w.applications()[0];
        let phase = &isp.phases[1];
        let volume_cpu = phase.cpu_bandwidth_gbps * phase.cpu_seconds.unwrap();
        let b = &blueprints()[0];
        let volume_gpu = b.bandwidth_gbps * b.compute_gpu_s.unwrap();
        assert!((volume_cpu - volume_gpu).abs() < 1e-6);
    }
}
