//! A synthetic stand-in for the paper's GPU profiling runs.
//!
//! The paper measures each benchmark on the five MIG slice sizes the A100
//! supports (14, 28, 42, 56, 98 SMs) and fits power laws to fill the gaps.
//! Without the hardware, this module regenerates plausible measurements by
//! evaluating the *published* fits at the MIG sizes and perturbing them
//! with multiplicative noise, then re-runs the paper's fitting pipeline
//! ([`hilp_soc::powerlaw::fit_power_law`]) on the samples. Tests assert the
//! recovered exponents agree with Table II, validating the pipeline
//! end-to-end.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hilp_soc::powerlaw::{fit_power_law, FitResult};

use crate::rodinia::BenchmarkProfile;

/// The SM counts Nvidia MIG can instantiate on the A100 (Section IV).
pub const MIG_SM_COUNTS: [f64; 5] = [14.0, 28.0, 42.0, 56.0, 98.0];

/// Synthetic per-SM-count measurements for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledSamples {
    /// Benchmark abbreviation.
    pub benchmark: String,
    /// `(sm_count, execution_seconds)` samples.
    pub times: Vec<(f64, f64)>,
    /// `(sm_count, bandwidth_gbps)` samples.
    pub bandwidths: Vec<(f64, f64)>,
}

/// Generates noisy synthetic measurements of `benchmark` at the MIG sizes.
///
/// `noise` is the relative standard deviation of the multiplicative
/// perturbation (e.g. `0.05` for 5% measurement noise); `seed` makes the
/// run reproducible.
///
/// # Example
///
/// ```
/// use hilp_workloads::{profiler, rodinia};
///
/// let hs = rodinia::benchmark("HS").unwrap();
/// let samples = profiler::profile_synthetic(hs, 0.02, 42);
/// assert_eq!(samples.times.len(), 5);
/// ```
#[must_use]
pub fn profile_synthetic(benchmark: &BenchmarkProfile, noise: f64, seed: u64) -> ProfiledSamples {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perturb = |value: f64| {
        // Symmetric multiplicative noise, clamped away from zero.
        let factor = 1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0);
        value * factor.max(0.05)
    };
    let times = MIG_SM_COUNTS
        .iter()
        .map(|&sms| (sms, perturb(benchmark.gpu_seconds_at(sms))))
        .collect();
    let bandwidths = MIG_SM_COUNTS
        .iter()
        .map(|&sms| (sms, perturb(benchmark.gpu_bandwidth_at(sms))))
        .collect();
    ProfiledSamples {
        benchmark: benchmark.short.to_string(),
        times,
        bandwidths,
    }
}

/// Re-fits power laws to synthetic samples, mirroring the paper's pipeline.
///
/// Returns `(time_fit, bandwidth_fit)`, or `None` if either fit is
/// impossible (degenerate samples).
#[must_use]
pub fn refit(samples: &ProfiledSamples) -> Option<(FitResult, FitResult)> {
    let time = fit_power_law(&samples.times)?;
    let bandwidth = fit_power_law(&samples.bandwidths)?;
    Some((time, bandwidth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rodinia;

    #[test]
    fn noiseless_profiling_recovers_published_exponents() {
        for b in rodinia::benchmarks() {
            let samples = profile_synthetic(b, 0.0, 1);
            let (time, bw) = refit(&samples).unwrap();
            assert!(
                (time.law.b - b.gpu_time_fit.b).abs() < 1e-6,
                "{}: recovered b {} vs table {}",
                b.short,
                time.law.b,
                b.gpu_time_fit.b
            );
            assert!((bw.law.b - b.gpu_bandwidth_fit.b).abs() < 1e-6);
            assert!(time.r_squared > 0.999_999);
        }
    }

    #[test]
    fn small_noise_keeps_exponents_close() {
        let hs = rodinia::benchmark("HS").unwrap();
        let samples = profile_synthetic(hs, 0.05, 7);
        let (time, _) = refit(&samples).unwrap();
        assert!((time.law.b - hs.gpu_time_fit.b).abs() < 0.15);
        assert!(time.r_squared > 0.9);
    }

    #[test]
    fn profiling_is_reproducible_per_seed() {
        let hs = rodinia::benchmark("HS").unwrap();
        assert_eq!(profile_synthetic(hs, 0.1, 3), profile_synthetic(hs, 0.1, 3));
        assert_ne!(profile_synthetic(hs, 0.1, 3), profile_synthetic(hs, 0.1, 4));
    }

    #[test]
    fn samples_cover_all_mig_sizes() {
        let nn = rodinia::benchmark("NN").unwrap();
        let samples = profile_synthetic(nn, 0.0, 0);
        let sizes: Vec<f64> = samples.times.iter().map(|p| p.0).collect();
        assert_eq!(sizes, MIG_SM_COUNTS.to_vec());
    }
}
