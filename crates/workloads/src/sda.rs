//! The Streaming-Dataflow Application (SDA) of Section VII.
//!
//! Each SDA sample flows through a fork-join DAG (Figure 9):
//!
//! ```text
//!   DS1 ─┐
//!   DS2 ─┼─> DF ─┬─> C1 ─┐
//!   DS3 ─┘       ├─> C2 ─┼─> PP
//!                └─> C3 ─┘
//! ```
//!
//! The three data-source phases (DS1–DS3) are pinned to dedicated DSAs;
//! Data Fusion (DF) must run on a CPU; the compute phases (C1–C3) and Post
//! Processing (PP) may run on a CPU or the GPU. The design objectives are
//! to (i) run DS1–DS3 in parallel and (ii) overlap the processing of
//! consecutive samples.
//!
//! The paper gives the per-phase execution-time estimates only graphically
//! (Figure 9); this module uses synthetic estimates chosen to reproduce the
//! qualitative result of Figure 10: the baseline `(c1,g8,d3^1)` SoC misses
//! its throughput objective, while either doubling CPU speed or doubling
//! GPU SMs meets it.

use crate::workload::{Application, GpuProfile, Phase, PhaseKind, Workload};

/// Per-phase execution-time estimates (seconds) on the baseline SoC.
///
/// `ds` is the data-source time on its dedicated 1-PE DSA; `df_cpu` the
/// fusion time on the baseline CPU; `c_cpu`/`c_gpu` the compute time on the
/// baseline CPU / the 8-SM GPU; `pp_cpu`/`pp_gpu` the post-processing time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdaTimings {
    /// Data-source phase time on its dedicated DSA (s).
    pub ds: f64,
    /// Data-fusion time on the baseline CPU (s).
    pub df_cpu: f64,
    /// Compute-phase time on the baseline CPU (s).
    pub c_cpu: f64,
    /// Compute-phase time on the baseline 8-SM GPU (s).
    pub c_gpu: f64,
    /// Post-processing time on the baseline CPU (s).
    pub pp_cpu: f64,
    /// Post-processing time on the baseline 8-SM GPU (s).
    pub pp_gpu: f64,
}

impl Default for SdaTimings {
    fn default() -> Self {
        SdaTimings {
            ds: 2.0,
            df_cpu: 1.0,
            c_cpu: 4.0,
            c_gpu: 2.0,
            pp_cpu: 2.0,
            pp_gpu: 1.0,
        }
    }
}

/// CPU speed multiplier for the "2x faster CPU" scenario of Figure 10b;
/// expressed by dividing CPU phase times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SdaScenario {
    /// The baseline `(c1,g8,d3^1)` SoC.
    Baseline,
    /// CPU phases run twice as fast (Figure 10b).
    FasterCpu,
    /// The GPU doubles its SM count — expressed on the SoC side, so phase
    /// timings are identical to the baseline (Figure 10c).
    BiggerGpu,
}

impl SdaScenario {
    /// Divisor applied to CPU phase times.
    #[must_use]
    pub fn cpu_speedup(self) -> f64 {
        match self {
            SdaScenario::FasterCpu => 2.0,
            SdaScenario::Baseline | SdaScenario::BiggerGpu => 1.0,
        }
    }

    /// GPU SM count of the scenario's SoC.
    #[must_use]
    pub fn gpu_sms(self) -> u32 {
        match self {
            SdaScenario::BiggerGpu => 16,
            SdaScenario::Baseline | SdaScenario::FasterCpu => 8,
        }
    }
}

/// Keys under which the three data-source DSAs advertise themselves
/// (`DsaSpec::accelerates`).
pub const DS_KEYS: [&str; 3] = ["DS1", "DS2", "DS3"];

/// GPU profile equivalent to `seconds` on an 8-SM GPU with linear
/// (`b = -1`) SM scaling — appropriate for the embarrassingly parallel SDA
/// kernels.
fn gpu_profile(seconds_at_8sm: f64) -> GpuProfile {
    GpuProfile {
        seconds_at_14sm: seconds_at_8sm * 8.0 / 14.0,
        time_exponent: -1.0,
        bandwidth_at_14sm_gbps: 5.0,
        bandwidth_exponent: 1.0,
    }
}

/// Builds one SDA application instance (one sample through the pipeline).
#[must_use]
#[allow(clippy::needless_range_loop)] // phase indices mirror the paper's figure
pub fn sda_application(sample: usize, timings: SdaTimings, cpu_speedup: f64) -> Application {
    let name = format!("SDA{sample}");
    let mut phases = Vec::with_capacity(8);
    // DS1, DS2, DS3: pinned to their DSAs, no CPU or GPU fallback. A 1-PE
    // DSA at the default 4x advantage acts like a 4-SM GPU slice; choose
    // the profile so it takes `timings.ds` seconds there.
    for key in DS_KEYS {
        phases.push(Phase {
            name: format!("{name}.{key}"),
            kind: PhaseKind::Custom,
            cpu_seconds: None,
            cpu_parallel: false,
            accel: Some(GpuProfile {
                seconds_at_14sm: timings.ds * 4.0 / 14.0,
                time_exponent: -1.0,
                bandwidth_at_14sm_gbps: 5.0,
                bandwidth_exponent: 1.0,
            }),
            gpu_eligible: false,
            dsa_key: Some(key.to_string()),
            cpu_bandwidth_gbps: 0.0,
        });
    }
    // DF: CPU only.
    phases.push(Phase {
        name: format!("{name}.DF"),
        kind: PhaseKind::Custom,
        cpu_seconds: Some(timings.df_cpu / cpu_speedup),
        cpu_parallel: false,
        accel: None,
        gpu_eligible: false,
        dsa_key: None,
        cpu_bandwidth_gbps: 2.0,
    });
    // C1, C2, C3: CPU or GPU.
    for i in 1..=3 {
        phases.push(Phase {
            name: format!("{name}.C{i}"),
            kind: PhaseKind::Custom,
            cpu_seconds: Some(timings.c_cpu / cpu_speedup),
            cpu_parallel: false,
            accel: Some(gpu_profile(timings.c_gpu)),
            gpu_eligible: true,
            dsa_key: None,
            cpu_bandwidth_gbps: 2.0,
        });
    }
    // PP: CPU or GPU.
    phases.push(Phase {
        name: format!("{name}.PP"),
        kind: PhaseKind::Custom,
        cpu_seconds: Some(timings.pp_cpu / cpu_speedup),
        cpu_parallel: false,
        accel: Some(gpu_profile(timings.pp_gpu)),
        gpu_eligible: true,
        dsa_key: None,
        cpu_bandwidth_gbps: 2.0,
    });

    // Indices: 0..3 DS, 3 DF, 4..7 C, 7 PP.
    let dependencies = vec![
        (0, 3),
        (1, 3),
        (2, 3),
        (3, 4),
        (3, 5),
        (3, 6),
        (4, 7),
        (5, 7),
        (6, 7),
    ];
    Application {
        name,
        phases,
        dependencies,
        start_dependencies: Vec::new(),
    }
}

/// Builds a *pipelined* SDA application: `samples` copies of the pipeline
/// DAG fused into one application, with initiation intervals (Section VII
/// extension) requiring each sample's data sources to start at least
/// `period_seconds` after the previous sample's — the streaming design
/// objective "overlap data stream processing for sample i+1 with the
/// processing of sample i" expressed as an explicit sampling period.
#[must_use]
pub fn sda_pipelined_application(
    samples: usize,
    timings: SdaTimings,
    cpu_speedup: f64,
    period_seconds: f64,
) -> Application {
    let prototype = sda_application(0, timings, cpu_speedup);
    let phases_per_sample = prototype.phases.len();
    let mut phases = Vec::with_capacity(samples * phases_per_sample);
    let mut dependencies = Vec::new();
    let mut start_dependencies = Vec::new();
    for k in 0..samples {
        let base = k * phases_per_sample;
        for (i, phase) in prototype.phases.iter().enumerate() {
            let mut phase = phase.clone();
            phase.name = format!("s{k}.{}", phase.name.split('.').nth(1).unwrap_or("phase"));
            phases.push(phase);
            let _ = i;
        }
        for &(a, b) in &prototype.dependencies {
            dependencies.push((base + a, base + b));
        }
        if k > 0 {
            let prev = (k - 1) * phases_per_sample;
            for ds in 0..DS_KEYS.len() {
                start_dependencies.push((prev + ds, base + ds, period_seconds));
            }
        }
    }
    Application {
        name: format!("SDApipe x{samples}"),
        phases,
        dependencies,
        start_dependencies,
    }
}

/// Builds an SDA workload of `samples` independent pipeline instances for
/// the given scenario. Overlapping consecutive samples is exactly the WLP
/// the scheduler must discover.
///
/// # Example
///
/// ```
/// use hilp_workloads::sda::{sda_workload, SdaScenario};
///
/// let workload = sda_workload(2, SdaScenario::Baseline);
/// assert_eq!(workload.applications().len(), 2);
/// assert_eq!(workload.num_phases(), 16);
/// ```
#[must_use]
pub fn sda_workload(samples: usize, scenario: SdaScenario) -> Workload {
    let timings = SdaTimings::default();
    let applications = (0..samples)
        .map(|i| sda_application(i, timings, scenario.cpu_speedup()))
        .collect();
    Workload::new(format!("SDA x{samples}"), applications)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_has_fork_join_shape() {
        let app = sda_application(0, SdaTimings::default(), 1.0);
        assert_eq!(app.phases.len(), 8);
        assert_eq!(app.dependencies.len(), 9);
        // DF has three predecessors, PP has three predecessors.
        let preds_of = |i: usize| app.dependencies.iter().filter(|(_, b)| *b == i).count();
        assert_eq!(preds_of(3), 3);
        assert_eq!(preds_of(7), 3);
    }

    #[test]
    fn ds_phases_are_pinned() {
        let app = sda_application(0, SdaTimings::default(), 1.0);
        for (phase, key) in app.phases.iter().zip(DS_KEYS) {
            assert!(phase.cpu_seconds.is_none());
            assert!(!phase.gpu_eligible);
            assert_eq!(phase.dsa_key.as_deref(), Some(key));
        }
    }

    #[test]
    fn ds_profile_yields_expected_time_on_its_dsa() {
        // A 1-PE DSA at 4x advantage = a 4-SM slice; the DS profile must
        // evaluate to the configured time there.
        let timings = SdaTimings::default();
        let app = sda_application(0, timings, 1.0);
        let profile = app.phases[0].accel.as_ref().unwrap();
        assert!((profile.seconds_at(4.0) - timings.ds).abs() < 1e-9);
    }

    #[test]
    fn gpu_profile_matches_8sm_baseline() {
        let timings = SdaTimings::default();
        let app = sda_application(0, timings, 1.0);
        let c1 = app.phases[4].accel.as_ref().unwrap();
        assert!((c1.seconds_at(8.0) - timings.c_gpu).abs() < 1e-9);
        // Doubling SMs halves the time (linear scaling).
        assert!((c1.seconds_at(16.0) - timings.c_gpu / 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_cpu_scenario_halves_cpu_times() {
        let base = sda_application(0, SdaTimings::default(), 1.0);
        let fast = sda_application(0, SdaTimings::default(), 2.0);
        assert_eq!(
            fast.phases[3].cpu_seconds.unwrap() * 2.0,
            base.phases[3].cpu_seconds.unwrap()
        );
    }

    #[test]
    fn workload_scales_with_sample_count() {
        let w = sda_workload(3, SdaScenario::Baseline);
        assert_eq!(w.applications().len(), 3);
        assert_eq!(w.num_phases(), 24);
        // Names are unique across samples.
        assert_ne!(w.applications()[0].name, w.applications()[1].name);
    }

    #[test]
    fn scenario_knobs_are_consistent() {
        assert_eq!(SdaScenario::Baseline.gpu_sms(), 8);
        assert_eq!(SdaScenario::BiggerGpu.gpu_sms(), 16);
        assert_eq!(SdaScenario::FasterCpu.cpu_speedup(), 2.0);
    }

    #[test]
    fn pipelined_application_links_samples_with_intervals() {
        let app = sda_pipelined_application(3, SdaTimings::default(), 1.0, 2.0);
        assert_eq!(app.phases.len(), 24);
        assert_eq!(app.dependencies.len(), 27);
        // Three DS phases per sample boundary, two boundaries.
        assert_eq!(app.start_dependencies.len(), 6);
        for &(a, b, s) in &app.start_dependencies {
            assert_eq!(b - a, 8, "interval links corresponding DS phases");
            assert_eq!(s, 2.0);
        }
    }

    #[test]
    fn pipelined_phase_names_are_unique() {
        let app = sda_pipelined_application(2, SdaTimings::default(), 1.0, 2.0);
        let mut names: Vec<&str> = app.phases.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), app.phases.len());
    }
}
