//! The Rodinia 3.1 measurement data of the paper's Table II.
//!
//! Ten benchmarks with scalable inputs, each profiled into setup, compute,
//! and teardown phases. CPU compute times are single-core; GPU compute
//! times and bandwidths are measured on the smallest (14-SM) MIG slice of
//! an A100 at the 765 MHz baseline clock, with power-law fits (`y = a*x^b`,
//! `x` in SMs, `y` normalized to 14 SMs) describing how they scale to other
//! SM counts.

use hilp_soc::powerlaw::PowerLaw;

/// A power-law fit together with the goodness of fit the paper reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportedFit {
    /// Fit coefficient `a`.
    pub a: f64,
    /// Fit exponent `b`.
    pub b: f64,
    /// Coefficient of determination reported in Table II.
    pub r_squared: f64,
}

impl ReportedFit {
    /// The fitted power law.
    #[must_use]
    pub fn law(&self) -> PowerLaw {
        PowerLaw::new(self.a, self.b)
    }
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Full benchmark name.
    pub name: &'static str,
    /// Paper abbreviation (BFS, HW, ...).
    pub short: &'static str,
    /// Setup-phase execution time on one CPU core (s).
    pub setup_seconds: f64,
    /// Compute-phase execution time on one CPU core (s).
    pub compute_cpu_seconds: f64,
    /// Compute-phase execution time on the 14-SM GPU slice (s).
    pub compute_gpu_seconds: f64,
    /// Teardown-phase execution time on one CPU core (s).
    pub teardown_seconds: f64,
    /// Compute-phase memory bandwidth on the 14-SM GPU slice (GB/s).
    pub gpu_bandwidth_gbps: f64,
    /// Power-law fit of GPU execution time versus SM count.
    pub gpu_time_fit: ReportedFit,
    /// Power-law fit of GPU bandwidth versus SM count.
    pub gpu_bandwidth_fit: ReportedFit,
    /// The scaled input configuration used for profiling.
    pub scaled_configuration: &'static str,
}

impl BenchmarkProfile {
    /// GPU compute time (s) on `sms` SMs at the baseline 765 MHz clock,
    /// scaled with the Table II power law normalized at 14 SMs.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `sms` is not positive.
    #[must_use]
    pub fn gpu_seconds_at(&self, sms: f64) -> f64 {
        self.compute_gpu_seconds * self.gpu_time_fit.law().scale(14.0, sms)
    }

    /// GPU compute bandwidth (GB/s) on `sms` SMs at the baseline clock.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `sms` is not positive.
    #[must_use]
    pub fn gpu_bandwidth_at(&self, sms: f64) -> f64 {
        self.gpu_bandwidth_gbps * self.gpu_bandwidth_fit.law().scale(14.0, sms)
    }

    /// Total single-core CPU time of all three phases (s) — the unit of the
    /// paper's fully-sequential speedup baseline.
    #[must_use]
    pub fn sequential_cpu_seconds(&self) -> f64 {
        self.setup_seconds + self.compute_cpu_seconds + self.teardown_seconds
    }
}

/// Table II, in the paper's row order.
const TABLE2: [BenchmarkProfile; 10] = [
    BenchmarkProfile {
        name: "Breadth-First Search",
        short: "BFS",
        setup_seconds: 95.3,
        compute_cpu_seconds: 17.0,
        compute_gpu_seconds: 1.0,
        teardown_seconds: 11.9,
        gpu_bandwidth_gbps: 86.5,
        gpu_time_fit: ReportedFit {
            a: 7.83,
            b: -0.77,
            r_squared: 0.95,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.07,
            b: 0.92,
            r_squared: 0.98,
        },
        scaled_configuration: "128M elements",
    },
    BenchmarkProfile {
        name: "Heartwall",
        short: "HW",
        setup_seconds: 8.0e-4,
        compute_cpu_seconds: 78.3,
        compute_gpu_seconds: 1.2,
        teardown_seconds: 0.2,
        gpu_bandwidth_gbps: 7.3,
        gpu_time_fit: ReportedFit {
            a: 3.77,
            b: -0.52,
            r_squared: 0.92,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.84,
            b: 0.24,
            r_squared: 0.30,
        },
        scaled_configuration: "104 frames",
    },
    BenchmarkProfile {
        name: "Hotspot3D",
        short: "HS3D",
        setup_seconds: 0.7,
        compute_cpu_seconds: 49.2,
        compute_gpu_seconds: 0.1,
        teardown_seconds: 51.2,
        gpu_bandwidth_gbps: 36.4,
        gpu_time_fit: ReportedFit {
            a: 10.33,
            b: -0.86,
            r_squared: 1.00,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.14,
            b: 0.75,
            r_squared: 1.00,
        },
        scaled_configuration: "512x512x8, 200 iterations",
    },
    BenchmarkProfile {
        name: "Hotspot",
        short: "HS",
        setup_seconds: 80.8,
        compute_cpu_seconds: 395.9,
        compute_gpu_seconds: 20.5,
        teardown_seconds: 71.3,
        gpu_bandwidth_gbps: 40.4,
        gpu_time_fit: ReportedFit {
            a: 13.93,
            b: -1.00,
            r_squared: 1.00,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.07,
            b: 1.00,
            r_squared: 1.00,
        },
        scaled_configuration: "16Kx16K, 512 iterations",
    },
    BenchmarkProfile {
        name: "LavaMD",
        short: "LMD",
        setup_seconds: 0.3,
        compute_cpu_seconds: 163.4,
        compute_gpu_seconds: 2.5,
        teardown_seconds: 0.3,
        gpu_bandwidth_gbps: 0.6,
        gpu_time_fit: ReportedFit {
            a: 13.98,
            b: -0.99,
            r_squared: 1.00,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.10,
            b: 0.90,
            r_squared: 1.00,
        },
        scaled_configuration: "42 1D boxes",
    },
    BenchmarkProfile {
        name: "LU Decomposition",
        short: "LUD",
        setup_seconds: 0.1,
        compute_cpu_seconds: 444.2,
        compute_gpu_seconds: 12.0,
        teardown_seconds: 0.6,
        gpu_bandwidth_gbps: 61.6,
        gpu_time_fit: ReportedFit {
            a: 10.26,
            b: -0.88,
            r_squared: 1.00,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.10,
            b: 0.87,
            r_squared: 1.00,
        },
        scaled_configuration: "matrix size 16K",
    },
    BenchmarkProfile {
        name: "Myocyte",
        short: "MC",
        setup_seconds: 0.1,
        compute_cpu_seconds: 77.6,
        compute_gpu_seconds: 8.3e-2,
        teardown_seconds: 0.6,
        gpu_bandwidth_gbps: 0.1,
        gpu_time_fit: ReportedFit {
            a: 1.01,
            b: 8.98e-06,
            r_squared: 0.00,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 2.60,
            b: -0.28,
            r_squared: 0.15,
        },
        scaled_configuration: "100K span, 12 w., 0 m.",
    },
    BenchmarkProfile {
        name: "Nearest Neighbor",
        short: "NN",
        setup_seconds: 1.6e-3,
        compute_cpu_seconds: 159.4,
        compute_gpu_seconds: 3.8e-3,
        teardown_seconds: 0.3,
        gpu_bandwidth_gbps: 187.6,
        gpu_time_fit: ReportedFit {
            a: 8.97,
            b: -0.82,
            r_squared: 0.98,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.07,
            b: 0.95,
            r_squared: 0.99,
        },
        scaled_configuration: "64K size, 2K neighbors",
    },
    BenchmarkProfile {
        name: "Pathfinder",
        short: "PF",
        setup_seconds: 72.1,
        compute_cpu_seconds: 14.0,
        compute_gpu_seconds: 0.2,
        teardown_seconds: 0.3,
        gpu_bandwidth_gbps: 95.2,
        gpu_time_fit: ReportedFit {
            a: 7.27,
            b: -0.76,
            r_squared: 0.99,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.27,
            b: 0.58,
            r_squared: 0.95,
        },
        scaled_configuration: "400K rows, 5K col., 1 pyr.",
    },
    BenchmarkProfile {
        name: "Stream Cluster",
        short: "SC",
        setup_seconds: 1.0e-4,
        compute_cpu_seconds: 156.0,
        compute_gpu_seconds: 2.1,
        teardown_seconds: 0.3,
        gpu_bandwidth_gbps: 216.1,
        gpu_time_fit: ReportedFit {
            a: 5.41,
            b: -0.62,
            r_squared: 0.87,
        },
        gpu_bandwidth_fit: ReportedFit {
            a: 0.07,
            b: 0.88,
            r_squared: 0.96,
        },
        scaled_configuration: "30-40 centers, 128K points",
    },
];

/// All ten benchmarks in Table II order.
#[must_use]
pub fn benchmarks() -> &'static [BenchmarkProfile] {
    &TABLE2
}

/// Looks a benchmark up by its paper abbreviation (case-insensitive).
#[must_use]
pub fn benchmark(short: &str) -> Option<&'static BenchmarkProfile> {
    TABLE2.iter().find(|b| b.short.eq_ignore_ascii_case(short))
}

/// Benchmark abbreviations sorted by descending CPU compute time: the
/// order in which the paper allocates DSAs (Section VI), prioritizing the
/// longest-running compute phases.
#[must_use]
pub fn dsa_priority_order() -> Vec<&'static str> {
    let mut order: Vec<&BenchmarkProfile> = TABLE2.iter().collect();
    order.sort_by(|x, y| {
        y.compute_cpu_seconds
            .partial_cmp(&x.compute_cpu_seconds)
            .expect("table data is finite")
    });
    order.into_iter().map(|b| b.short).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_benchmarks_are_present() {
        assert_eq!(benchmarks().len(), 10);
        for b in benchmarks() {
            assert!(b.setup_seconds >= 0.0);
            assert!(b.compute_cpu_seconds > 0.0);
            assert!(b.compute_gpu_seconds > 0.0);
            assert!(b.teardown_seconds >= 0.0);
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(benchmark("lud").unwrap().short, "LUD");
        assert_eq!(benchmark("LUD").unwrap().short, "LUD");
        assert!(benchmark("NOPE").is_none());
    }

    #[test]
    fn dsa_priority_order_matches_paper() {
        // "The DSA in a 1-DSA SoC hence accelerates LUD, the DSAs in a
        // 2-DSA SoC accelerate LUD and HS, and so on."
        let order = dsa_priority_order();
        assert_eq!(&order[..2], &["LUD", "HS"]);
        assert_eq!(order.len(), 10);
        assert_eq!(order.last(), Some(&"PF"));
    }

    #[test]
    fn fits_are_normalized_near_14_sms() {
        // y = a * x^b is normalized to the 14-SM slice, so a * 14^b must be
        // close to 1 for every fit the paper calls good (R^2 >= 0.9).
        for b in benchmarks() {
            if b.gpu_time_fit.r_squared >= 0.9 {
                let at14 = b.gpu_time_fit.law().eval(14.0);
                assert!(
                    (at14 - 1.0).abs() < 0.12,
                    "{}: time fit evaluates to {at14} at 14 SMs",
                    b.short
                );
            }
        }
    }

    #[test]
    fn gpu_scaling_reproduces_paper_speedup_arithmetic() {
        // HS on a 64-SM-equivalent DSA: 20.5 * (64/14)^-1 = 4.48 s. This is
        // the critical-chain term behind HILP's reported 45.6x speedup for
        // the (c4,g16,d2^16) SoC.
        let hs = benchmark("HS").unwrap();
        assert!((hs.gpu_seconds_at(64.0) - 4.48).abs() < 0.05);
        // LUD: 12.0 * (64/14)^-0.88 = 3.15 s.
        let lud = benchmark("LUD").unwrap();
        assert!((lud.gpu_seconds_at(64.0) - 3.15).abs() < 0.05);
    }

    #[test]
    fn flat_fits_stay_flat() {
        // MC is insensitive to SM count: its scaling factor is ~1 anywhere.
        let mc = benchmark("MC").unwrap();
        assert!((mc.gpu_seconds_at(98.0) - mc.compute_gpu_seconds).abs() < 1e-3);
    }

    #[test]
    fn bandwidth_scales_up_with_sms() {
        let sc = benchmark("SC").unwrap();
        assert!(sc.gpu_bandwidth_at(64.0) > sc.gpu_bandwidth_gbps);
        assert!(sc.gpu_bandwidth_at(7.0) < sc.gpu_bandwidth_gbps);
    }

    #[test]
    fn sequential_time_sums_phases() {
        let bfs = benchmark("BFS").unwrap();
        assert!((bfs.sequential_cpu_seconds() - 124.2).abs() < 1e-9);
    }
}
