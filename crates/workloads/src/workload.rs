//! The workload model consumed by `hilp-core`.

use serde::{Deserialize, Serialize};

use crate::rodinia;

/// Exponent of the CPU compute-phase strong-scaling model.
///
/// The paper profiles every core count from 1 to 32 on the EPYC 7543 but
/// does not publish the per-core-count times, so the reproduction models
/// multi-core CPU compute time as `t(k) = t(1) * k^-0.8` — a sublinear
/// power law typical of the parallel Rodinia OpenMP kernels. This only
/// affects schedules that fall back to CPU compute, which accelerated SoCs
/// rarely do.
pub const CPU_SCALING_EXPONENT: f64 = -0.8;

/// Nominal memory bandwidth (GB/s) attributed to setup and teardown phases.
///
/// Table II does not report CPU-phase bandwidth; these phases are dominated
/// by input generation and file I/O, so a small nominal figure is used.
pub const SETUP_TEARDOWN_BANDWIDTH_GBPS: f64 = 1.0;

/// The role of a phase within its application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Sequential preparation (argument parsing, input generation,
    /// allocation); CPU-only.
    Setup,
    /// The accelerable kernel.
    Compute,
    /// Sequential result write-back; CPU-only.
    Teardown,
    /// A phase of a custom application (e.g. the SDA workload).
    Custom,
}

/// GPU-side execution profile of a compute phase, normalized to the 14-SM
/// MIG slice at the 765 MHz baseline clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuProfile {
    /// Execution time on 14 SMs at 765 MHz (s).
    pub seconds_at_14sm: f64,
    /// Power-law exponent of execution time versus SM count.
    pub time_exponent: f64,
    /// Memory bandwidth on 14 SMs at 765 MHz (GB/s).
    pub bandwidth_at_14sm_gbps: f64,
    /// Power-law exponent of bandwidth versus SM count.
    pub bandwidth_exponent: f64,
}

impl GpuProfile {
    /// Execution time (s) on `sms` SMs at the baseline clock.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `sms` is not positive.
    #[must_use]
    pub fn seconds_at(&self, sms: f64) -> f64 {
        debug_assert!(sms > 0.0);
        self.seconds_at_14sm * (sms / 14.0).powf(self.time_exponent)
    }

    /// Bandwidth (GB/s) on `sms` SMs at the baseline clock.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `sms` is not positive.
    #[must_use]
    pub fn bandwidth_at(&self, sms: f64) -> f64 {
        debug_assert!(sms > 0.0);
        self.bandwidth_at_14sm_gbps * (sms / 14.0).powf(self.bandwidth_exponent)
    }
}

/// One phase of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase name, unique within the application (e.g. `HS.compute`).
    pub name: String,
    /// Role of the phase.
    pub kind: PhaseKind,
    /// Execution time on a single CPU core (s); `None` means the phase
    /// cannot run on a CPU at all (used by pinned SDA phases).
    pub cpu_seconds: Option<f64>,
    /// Whether the phase may use multiple CPU cores (compute phases).
    pub cpu_parallel: bool,
    /// Accelerator-side profile (shared by the GPU and by DSAs, which are
    /// modeled as GPU slices with an efficiency advantage); `None` means
    /// the phase cannot be accelerated at all.
    pub accel: Option<GpuProfile>,
    /// Whether the SoC's GPU may run this phase (requires `accel`).
    pub gpu_eligible: bool,
    /// DSAs advertising this key (`DsaSpec::accelerates`) may run the
    /// phase; the compatibility matrix `E_cap` for DSAs. `None` means no
    /// DSA can. For Rodinia compute phases this is the benchmark
    /// abbreviation; the SDA workload uses it to pin data-source phases to
    /// dedicated DSAs (Section VII).
    pub dsa_key: Option<String>,
    /// Memory bandwidth consumed when running on one CPU core (GB/s).
    pub cpu_bandwidth_gbps: f64,
}

impl Phase {
    /// Whether this phase can only execute on CPU cores.
    #[must_use]
    pub fn is_cpu_only(&self) -> bool {
        self.accel.is_none()
    }
}

/// A multi-phase application: phases plus a dependency DAG over them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Application name (the benchmark abbreviation for Rodinia apps).
    pub name: String,
    /// The phases, in declaration order.
    pub phases: Vec<Phase>,
    /// Dependency edges `(before, after)` as indices into `phases`; the
    /// paper's `D_apq` matrix. For Rodinia applications this is the chain
    /// `setup -> compute -> teardown`.
    pub dependencies: Vec<(usize, usize)>,
    /// Initiation intervals (Section VII extension): `(before, after,
    /// seconds)` requires `after` to start at least `seconds` after
    /// `before` *starts*, allowing pipelined overlap.
    pub start_dependencies: Vec<(usize, usize, f64)>,
}

impl Application {
    /// Total single-core CPU time of all phases (s); phases that cannot run
    /// on a CPU contribute their fastest available time instead.
    #[must_use]
    pub fn sequential_cpu_seconds(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| {
                p.cpu_seconds
                    .unwrap_or_else(|| p.accel.as_ref().map_or(0.0, |g| g.seconds_at_14sm))
            })
            .sum()
    }
}

/// The paper's three workload variants (Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadVariant {
    /// The raw Table II measurements.
    Rodinia,
    /// Setup and teardown times reduced 5x — the main evaluation workload.
    Default,
    /// Setup and teardown times reduced 20x.
    Optimized,
}

impl WorkloadVariant {
    /// The divisor applied to setup and teardown times.
    #[must_use]
    pub fn serial_reduction(self) -> f64 {
        match self {
            WorkloadVariant::Rodinia => 1.0,
            WorkloadVariant::Default => 5.0,
            WorkloadVariant::Optimized => 20.0,
        }
    }

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadVariant::Rodinia => "Rodinia",
            WorkloadVariant::Default => "Default",
            WorkloadVariant::Optimized => "Optimized",
        }
    }
}

/// A set of independent applications to schedule together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    applications: Vec<Application>,
}

impl Workload {
    /// Creates a workload from applications.
    #[must_use]
    pub fn new(name: impl Into<String>, applications: Vec<Application>) -> Self {
        Workload {
            name: name.into(),
            applications,
        }
    }

    /// Workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The applications.
    #[must_use]
    pub fn applications(&self) -> &[Application] {
        &self.applications
    }

    /// One copy of each Table II benchmark under the given variant.
    #[must_use]
    pub fn rodinia(variant: WorkloadVariant) -> Self {
        let reduction = variant.serial_reduction();
        let applications = rodinia::benchmarks()
            .iter()
            .map(|b| rodinia_application(b, reduction))
            .collect();
        Workload {
            name: variant.name().to_string(),
            applications,
        }
    }

    /// Total single-core CPU time of the whole workload (s): the paper's
    /// fully-sequential speedup baseline (one CPU core executing every
    /// phase of every application back to back).
    #[must_use]
    pub fn sequential_cpu_seconds(&self) -> f64 {
        self.applications
            .iter()
            .map(Application::sequential_cpu_seconds)
            .sum()
    }

    /// Total number of phases across applications.
    #[must_use]
    pub fn num_phases(&self) -> usize {
        self.applications.iter().map(|a| a.phases.len()).sum()
    }

    /// A workload with `copies` instances of every application (names are
    /// suffixed `#k` to stay unique). Models consolidation scenarios with
    /// higher WLP than the paper's single-copy workloads.
    ///
    /// # Panics
    ///
    /// Panics when `copies` is zero.
    #[must_use]
    pub fn with_copies(&self, copies: usize) -> Workload {
        assert!(copies >= 1, "a workload needs at least one copy");
        if copies == 1 {
            return self.clone();
        }
        let applications = (0..copies)
            .flat_map(|k| {
                self.applications.iter().map(move |a| {
                    let mut app = a.clone();
                    app.name = format!("{}#{k}", a.name);
                    for phase in &mut app.phases {
                        phase.name = format!("{}#{k}", phase.name);
                    }
                    app
                })
            })
            .collect();
        Workload::new(format!("{} x{copies}", self.name), applications)
    }

    /// The sub-workload containing only the named applications, in this
    /// workload's order. Unknown names are ignored.
    #[must_use]
    pub fn subset(&self, names: &[&str]) -> Workload {
        let applications = self
            .applications
            .iter()
            .filter(|a| names.iter().any(|n| n.eq_ignore_ascii_case(&a.name)))
            .cloned()
            .collect();
        Workload::new(format!("{} (subset)", self.name), applications)
    }
}

/// Builds the three-phase application of one Table II benchmark.
fn rodinia_application(b: &rodinia::BenchmarkProfile, serial_reduction: f64) -> Application {
    // The compute phase moves the same bytes on CPU and GPU; its CPU
    // bandwidth follows from the GPU volume spread over the CPU time.
    let compute_volume_gb = b.gpu_bandwidth_gbps * b.compute_gpu_seconds;
    let compute_cpu_bw = if b.compute_cpu_seconds > 0.0 {
        compute_volume_gb / b.compute_cpu_seconds
    } else {
        0.0
    };
    let phases = vec![
        Phase {
            name: format!("{}.setup", b.short),
            kind: PhaseKind::Setup,
            cpu_seconds: Some(b.setup_seconds / serial_reduction),
            cpu_parallel: false,
            accel: None,
            gpu_eligible: false,
            dsa_key: None,
            cpu_bandwidth_gbps: SETUP_TEARDOWN_BANDWIDTH_GBPS,
        },
        Phase {
            name: format!("{}.compute", b.short),
            kind: PhaseKind::Compute,
            cpu_seconds: Some(b.compute_cpu_seconds),
            cpu_parallel: true,
            accel: Some(GpuProfile {
                seconds_at_14sm: b.compute_gpu_seconds,
                time_exponent: b.gpu_time_fit.b,
                bandwidth_at_14sm_gbps: b.gpu_bandwidth_gbps,
                bandwidth_exponent: b.gpu_bandwidth_fit.b,
            }),
            gpu_eligible: true,
            dsa_key: Some(b.short.to_string()),
            cpu_bandwidth_gbps: compute_cpu_bw,
        },
        Phase {
            name: format!("{}.teardown", b.short),
            kind: PhaseKind::Teardown,
            cpu_seconds: Some(b.teardown_seconds / serial_reduction),
            cpu_parallel: false,
            accel: None,
            gpu_eligible: false,
            dsa_key: None,
            cpu_bandwidth_gbps: SETUP_TEARDOWN_BANDWIDTH_GBPS,
        },
    ];
    Application {
        name: b.short.to_string(),
        phases,
        dependencies: vec![(0, 1), (1, 2)],
        start_dependencies: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rodinia_workload_has_thirty_phases() {
        let w = Workload::rodinia(WorkloadVariant::Rodinia);
        assert_eq!(w.applications().len(), 10);
        assert_eq!(w.num_phases(), 30);
        for app in w.applications() {
            assert_eq!(app.dependencies, vec![(0, 1), (1, 2)]);
            assert_eq!(app.phases[0].kind, PhaseKind::Setup);
            assert_eq!(app.phases[1].kind, PhaseKind::Compute);
            assert_eq!(app.phases[2].kind, PhaseKind::Teardown);
        }
    }

    #[test]
    fn variants_scale_serial_phases_only() {
        let raw = Workload::rodinia(WorkloadVariant::Rodinia);
        let opt = Workload::rodinia(WorkloadVariant::Optimized);
        let raw_hs = &raw.applications()[3];
        let opt_hs = &opt.applications()[3];
        assert_eq!(raw_hs.name, "HS");
        let ratio = raw_hs.phases[0].cpu_seconds.unwrap() / opt_hs.phases[0].cpu_seconds.unwrap();
        assert!((ratio - 20.0).abs() < 1e-9);
        // Compute phases are untouched.
        assert_eq!(raw_hs.phases[1].cpu_seconds, opt_hs.phases[1].cpu_seconds);
    }

    #[test]
    fn sequential_baselines_match_hand_arithmetic() {
        // Rodinia: sum of all Table II phase times ~ 1709.3 + 249.5 ~ but
        // computed directly from the table.
        let rodinia: f64 = crate::rodinia::benchmarks()
            .iter()
            .map(|b| b.sequential_cpu_seconds())
            .sum();
        let w = Workload::rodinia(WorkloadVariant::Rodinia);
        assert!((w.sequential_cpu_seconds() - rodinia).abs() < 1e-9);

        // Default: serial phases divided by 5.
        let default = Workload::rodinia(WorkloadVariant::Default);
        let expected: f64 = crate::rodinia::benchmarks()
            .iter()
            .map(|b| b.setup_seconds / 5.0 + b.compute_cpu_seconds + b.teardown_seconds / 5.0)
            .sum();
        assert!((default.sequential_cpu_seconds() - expected).abs() < 1e-9);
        assert!((default.sequential_cpu_seconds() - 1632.0).abs() < 5.0);
    }

    #[test]
    fn gpu_profile_scaling_matches_table_accessors() {
        let w = Workload::rodinia(WorkloadVariant::Default);
        let hs = &w.applications()[3].phases[1];
        let profile = hs.accel.as_ref().unwrap();
        let table = crate::rodinia::benchmark("HS").unwrap();
        for sms in [4.0, 14.0, 16.0, 64.0, 98.0] {
            assert!((profile.seconds_at(sms) - table.gpu_seconds_at(sms)).abs() < 1e-9);
            assert!((profile.bandwidth_at(sms) - table.gpu_bandwidth_at(sms)).abs() < 1e-9);
        }
    }

    #[test]
    fn compute_cpu_bandwidth_conserves_volume() {
        let w = Workload::rodinia(WorkloadVariant::Rodinia);
        let sc = &w.applications()[9];
        assert_eq!(sc.name, "SC");
        let phase = &sc.phases[1];
        let table = crate::rodinia::benchmark("SC").unwrap();
        let gpu_volume = table.gpu_bandwidth_gbps * table.compute_gpu_seconds;
        let cpu_volume = phase.cpu_bandwidth_gbps * phase.cpu_seconds.unwrap();
        assert!((gpu_volume - cpu_volume).abs() < 1e-9);
    }

    #[test]
    fn setup_phases_are_cpu_only() {
        let w = Workload::rodinia(WorkloadVariant::Default);
        for app in w.applications() {
            assert!(app.phases[0].is_cpu_only());
            assert!(!app.phases[0].cpu_parallel);
            assert!(app.phases[2].is_cpu_only());
            assert_eq!(app.phases[1].dsa_key.as_deref(), Some(app.name.as_str()));
            assert!(app.phases[1].gpu_eligible);
        }
    }

    #[test]
    fn copies_multiply_applications_with_unique_names() {
        let base = Workload::rodinia(WorkloadVariant::Default);
        let tripled = base.with_copies(3);
        assert_eq!(tripled.applications().len(), 30);
        assert_eq!(tripled.num_phases(), 90);
        let mut names: Vec<&str> = tripled
            .applications()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
        // Sequential baseline scales linearly.
        assert!(
            (tripled.sequential_cpu_seconds() - 3.0 * base.sequential_cpu_seconds()).abs() < 1e-6
        );
    }

    #[test]
    fn one_copy_is_identity() {
        let base = Workload::rodinia(WorkloadVariant::Default);
        assert_eq!(base.with_copies(1), base);
    }

    #[test]
    fn subset_filters_case_insensitively() {
        let base = Workload::rodinia(WorkloadVariant::Default);
        let pair = base.subset(&["hs", "LUD", "nonexistent"]);
        assert_eq!(pair.applications().len(), 2);
        assert_eq!(pair.applications()[0].name, "HS");
        assert_eq!(pair.applications()[1].name, "LUD");
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn zero_copies_panics() {
        let _ = Workload::rodinia(WorkloadVariant::Default).with_copies(0);
    }
}
