//! Workloads for the HILP reproduction.
//!
//! The paper evaluates HILP on ten scalable Rodinia 3.1 benchmarks profiled
//! on an AMD EPYC 7543 CPU and an Nvidia A100 GPU (Section IV, Table II).
//! We do not have that hardware; instead, this crate embeds the published
//! measurements — per-phase execution times, GPU bandwidth, and the
//! power-law scaling fits — as the model inputs they are, and provides:
//!
//! * [`rodinia`] — the Table II data and accessors.
//! * [`Workload`] / [`Application`] / [`Phase`] — the workload model
//!   consumed by `hilp-core`: multi-phase applications with per-phase
//!   compatibility and scaling profiles.
//! * [`WorkloadVariant`] — the paper's three workloads: *Rodinia* (as
//!   measured), *Default* (setup/teardown reduced 5x), and *Optimized*
//!   (reduced 20x).
//! * [`profiler`] — a synthetic stand-in for the paper's profiling runs:
//!   it regenerates noisy per-SM-count samples from the published power
//!   laws and re-fits them with [`hilp_soc::powerlaw`], exercising the full
//!   measurement-to-model pipeline.
//! * [`sda`] — the Section VII Streaming-Dataflow Application with its
//!   fork-join dependency graph.
//!
//! # Example
//!
//! ```
//! use hilp_workloads::{Workload, WorkloadVariant};
//!
//! let default = Workload::rodinia(WorkloadVariant::Default);
//! assert_eq!(default.applications().len(), 10);
//! // The sequential single-core baseline of the Default workload is about
//! // 1,632 seconds.
//! assert!((default.sequential_cpu_seconds() - 1632.0).abs() < 5.0);
//! ```

#![warn(missing_docs)]

pub mod mobile;
pub mod profiler;
pub mod rodinia;
pub mod sda;

mod workload;

pub use workload::{
    Application, GpuProfile, Phase, PhaseKind, Workload, WorkloadVariant, CPU_SCALING_EXPONENT,
    SETUP_TEARDOWN_BANDWIDTH_GBPS,
};
