//! Budgeted fuzz driver for the cross-solver differential oracle.
//!
//! Draws random scheduling instances and workload/SoC/constraint triples
//! from the shared [`hilp_testkit::strategies`], runs the full differential
//! battery on each, and exits non-zero if any two solver paths disagree.
//! Failing cases are written to `--out-dir` so CI can upload them as
//! artifacts.
//!
//! ```text
//! fuzz_smoke [--cases N] [--seed S] [--time-budget-secs T] [--out-dir DIR] [--quiet] [--bnb-threads N]
//! ```
//!
//! The case mix per 10 cases: 6 tiny instances (full battery including the
//! brute-force reference, both MILP encodings, and the metamorphic
//! transforms), 3 small instances (solver-vs-solver and bounds checks), and
//! 1 encoding-pipeline case. Every tiny case additionally re-solves under a
//! sampled node budget and checks the anytime contract: the truncated
//! incumbent stays feasible and the reported bounds still sandwich the
//! brute-force optimum. Every instance case (tiny and small) additionally
//! runs the delta-solving differential: a random single-axis perturbation
//! answered incrementally must match a from-scratch solve bit for bit.
//!
//! `--delta` switches to a delta-only corpus (the gating `delta-oracle` CI
//! job): every case is an instance + perturbation pair, alternating tiny
//! instances under the exact solver and small instances under the sweep's
//! heuristic-only configuration (which exercises the certificate tier).
//!
//! `--energy` switches to an energy-only corpus (the gating `energy-oracle`
//! CI job): every case is a tiny instance run through the full energy
//! differential battery — energy accounting, the infinite-cap transparency
//! identity, the `Objective::Energy` lexicographic optimum, the Pareto
//! ladder against the exhaustive front, capped solves pinned to the front,
//! and the power-scaling metamorphic round. The default mix also runs the
//! battery on every tiny case.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use proptest::{fnv1a, Strategy, TestRng};

use hilp_sched::SolverConfig;
use hilp_telemetry::{Reporter, Telemetry};
use hilp_testkit::delta::{arb_perturbation, check_delta};
use hilp_testkit::harness::{
    check_budgeted, check_energy, check_instance, check_pipeline, CheckStats, OracleConfig,
};
use hilp_testkit::strategies::{
    arb_constraints, arb_instance, arb_soc, arb_workload, InstanceParams,
};

struct Args {
    cases: u64,
    seed: u64,
    time_budget: Option<Duration>,
    out_dir: PathBuf,
    quiet: bool,
    delta_only: bool,
    energy_only: bool,
    bnb_threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 200,
        seed: 0x00C0_FFEE,
        time_budget: None,
        out_dir: PathBuf::from("fuzz-failures"),
        quiet: false,
        delta_only: false,
        energy_only: false,
        bnb_threads: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--cases" => args.cases = value("--cases").parse().expect("--cases: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--time-budget-secs" => {
                args.time_budget = Some(Duration::from_secs(
                    value("--time-budget-secs")
                        .parse()
                        .expect("--time-budget-secs: integer"),
                ));
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")),
            "--quiet" => args.quiet = true,
            "--delta" => args.delta_only = true,
            "--energy" => args.energy_only = true,
            "--bnb-threads" => {
                args.bnb_threads = value("--bnb-threads")
                    .parse()
                    .expect("--bnb-threads: integer");
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: fuzz_smoke [--cases N] [--seed S] \
                     [--time-budget-secs T] [--out-dir DIR] [--quiet] [--delta] [--energy] \
                     [--bnb-threads N]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let reporter = Reporter::new(args.quiet, &Telemetry::disabled());
    let started = Instant::now();
    // `--bnb-threads` sets the worker count for every exact search the
    // oracle runs. Results are bit-identical for any value, and the
    // harness's own parallel differential replays against 4 workers, so a
    // CI matrix over this flag proves determinism end to end.
    let mut config = OracleConfig::default();
    config.solver.bnb_threads = args.bnb_threads;
    let config = config;
    let mut stats = CheckStats::default();
    let mut failures = 0u64;

    let tiny = arb_instance(InstanceParams::tiny());
    let small = arb_instance(InstanceParams::small());
    let workloads = arb_workload();
    let socs = arb_soc();
    let constraints = arb_constraints();
    let perturbations = arb_perturbation();
    // Heuristic-only configuration for delta checks on small instances:
    // the one the DSE sweep uses, and the one where tightening deltas
    // take the bound-certificate tier.
    let sweep_solver = SolverConfig::sweep();
    let hash = fnv1a("hilp-testkit::fuzz_smoke") ^ args.seed;

    for case in 0..args.cases {
        // `case` completed cases so far: the budget is only consulted after
        // at least one case has run.
        if let Some(budget) = args.time_budget {
            if started.elapsed() > budget && case > 0 {
                reporter.say(&format!("time budget exhausted after {case} cases"));
                break;
            }
        }
        let mut rng = TestRng::new(hash, case);
        let result = if args.energy_only {
            // Energy-only corpus: every case is a tiny instance under the
            // full energy differential battery.
            let instance = tiny.generate(&mut rng);
            check_energy(&instance, &config, &mut stats)
        } else if args.delta_only {
            // Delta-only corpus: alternate tiny instances under the exact
            // solver (identity + scratch tiers, optimality preserved) and
            // small instances under the heuristic-only sweep configuration
            // (where tightening deltas take the certificate tier).
            if case % 2 == 0 {
                let instance = tiny.generate(&mut rng);
                let p = perturbations.generate(&mut rng);
                check_delta(&instance, &p, &config.solver, &mut stats)
            } else {
                let instance = small.generate(&mut rng);
                let p = perturbations.generate(&mut rng);
                check_delta(&instance, &p, &sweep_solver, &mut stats)
            }
        } else {
            match case % 10 {
                0..=5 => {
                    let instance = tiny.generate(&mut rng);
                    // Sampled node budget: usually small enough to truncate
                    // real searches, with every fourth draw generous enough
                    // to finish (covering the untruncated-implies-proved
                    // contract). Derived from the case index (not the RNG)
                    // so the instance stream is unchanged from earlier fuzz
                    // corpora.
                    let node_budget = match case % 4 {
                        3 => 1 << 22,
                        _ => 1 + (case.wrapping_mul(0x9E37_79B9) >> 7) % 96,
                    };
                    check_instance(&instance, &config, &mut stats)
                        .and_then(|()| {
                            check_budgeted(&instance, node_budget, &config.solver, &mut stats)
                        })
                        .and_then(|()| {
                            let p = perturbations.generate(&mut rng);
                            check_delta(&instance, &p, &config.solver, &mut stats)
                        })
                        .and_then(|()| check_energy(&instance, &config, &mut stats))
                }
                6..=8 => {
                    let instance = small.generate(&mut rng);
                    check_instance(&instance, &config, &mut stats).and_then(|()| {
                        let p = perturbations.generate(&mut rng);
                        check_delta(&instance, &p, &sweep_solver, &mut stats)
                    })
                }
                _ => check_pipeline(
                    &workloads.generate(&mut rng),
                    &socs.generate(&mut rng),
                    &constraints.generate(&mut rng),
                    &mut stats,
                ),
            }
        };
        if let Err(disagreement) = result {
            failures += 1;
            eprintln!("case {case} (seed {}): {disagreement}", args.seed);
            if let Err(io) = write_failure(&args, case, &disagreement.to_string()) {
                eprintln!("could not record failing case: {io}");
            }
        }
    }

    // The final tally is the program's output, not progress: always printed.
    println!(
        "fuzz_smoke: {} in {:.1}s; {failures} disagreement(s)",
        stats.summary(),
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        eprintln!("failing cases recorded under {}", args.out_dir.display());
        std::process::exit(1);
    }
}

fn write_failure(args: &Args, case: u64, detail: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(&args.out_dir)?;
    let path = args.out_dir.join(format!("case-{}-{case}.txt", args.seed));
    let mut file = std::fs::File::create(&path)?;
    writeln!(
        file,
        "fuzz_smoke failure\nseed: {}\ncase: {case}\nreproduce: fuzz_smoke --seed {} --cases {}\n\n{detail}",
        args.seed,
        args.seed,
        case + 1,
    )
}
