//! Exhaustive brute-force reference scheduler for tiny instances.
//!
//! The search enumerates every *serial schedule-generation* run: every
//! precedence-feasible placement order, every mode assignment, and for each
//! (order, modes) pair the earliest feasible start of each task given what is
//! already placed. For regular objectives (makespan) over MM-RCPSP with
//! non-negative minimum time lags this enumeration contains an optimal
//! schedule (the active-schedule dominance theorem; see Kolisch/Sprecher on
//! schedule-generation schemes). The same assumption underpins the `sched`
//! branch-and-bound — and the oracle cross-checks it empirically against the
//! assumption-free time-indexed MILP encoding on capped instances.
//!
//! Feasibility during placement is decided by an independent dense time scan
//! (machine exclusivity, power/bandwidth/core caps, custom cumulative
//! resources), deliberately sharing no code with the solver's timetables so
//! that a bug in one cannot mask a bug in the other.

use hilp_sched::{EdgeKind, Instance, ModeId, ResourceId, Schedule, TaskId};

/// Largest instance the brute force will accept. The search is
/// `O(n! · modes^n · horizon)`, so anything beyond this is impractical.
pub const MAX_BRUTE_FORCE_TASKS: usize = 6;

/// Cumulative cap comparisons share the solver's floating-point tolerance.
const CAP_EPS: f64 = 1e-9;

/// An optimal schedule found by exhaustive enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceResult {
    /// The provably optimal makespan.
    pub makespan: u32,
    /// One schedule attaining it.
    pub schedule: Schedule,
}

/// The true optimal makespan of a tiny instance, or `None` if no feasible
/// schedule fits inside the horizon.
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_BRUTE_FORCE_TASKS`] tasks.
pub fn brute_force_makespan(instance: &Instance) -> Option<u32> {
    brute_force_schedule(instance).map(|r| r.makespan)
}

/// Like [`brute_force_makespan`] but also returns an optimal schedule.
pub fn brute_force_schedule(instance: &Instance) -> Option<BruteForceResult> {
    let n = instance.num_tasks();
    assert!(
        n <= MAX_BRUTE_FORCE_TASKS,
        "brute force is factorial; got {n} tasks (limit {MAX_BRUTE_FORCE_TASKS})"
    );
    if n == 0 {
        return Some(BruteForceResult {
            makespan: 0,
            schedule: Schedule {
                starts: Vec::new(),
                modes: Vec::new(),
            },
        });
    }
    let mut search = Search {
        instance,
        placed: vec![false; n],
        starts: vec![0; n],
        modes: vec![ModeId(0); n],
        finishes: vec![0; n],
        num_placed: 0,
        best: None,
    };
    search.dfs();
    search
        .best
        .map(|(makespan, starts, modes)| BruteForceResult {
            makespan,
            schedule: Schedule { starts, modes },
        })
}

struct Search<'a> {
    instance: &'a Instance,
    placed: Vec<bool>,
    starts: Vec<u32>,
    modes: Vec<ModeId>,
    finishes: Vec<u32>,
    num_placed: usize,
    best: Option<(u32, Vec<u32>, Vec<ModeId>)>,
}

impl Search<'_> {
    fn dfs(&mut self) {
        let n = self.instance.num_tasks();
        let partial = (0..n)
            .filter(|&t| self.placed[t])
            .map(|t| self.finishes[t])
            .max()
            .unwrap_or(0);
        // Admissible cut: completing the partial schedule can only raise the
        // latest finish, so a partial already at the incumbent cannot improve.
        if let Some((best, _, _)) = &self.best {
            if partial >= *best {
                return;
            }
        }
        if self.num_placed == n {
            self.best = Some((partial, self.starts.clone(), self.modes.clone()));
            return;
        }
        for t in 0..n {
            if self.placed[t] {
                continue;
            }
            let task = TaskId(t);
            if !self
                .instance
                .predecessors(task)
                .iter()
                .all(|p| self.placed[p.0])
            {
                continue;
            }
            for m in 0..self.instance.task(task).modes.len() {
                let mode_id = ModeId(m);
                if let Some(start) = self.earliest_start(task, mode_id) {
                    let duration = self.instance.mode(task, mode_id).duration;
                    self.placed[t] = true;
                    self.starts[t] = start;
                    self.modes[t] = mode_id;
                    self.finishes[t] = start + duration;
                    self.num_placed += 1;
                    self.dfs();
                    self.num_placed -= 1;
                    self.placed[t] = false;
                }
            }
        }
    }

    /// Earliest start at which `task` in `mode_id` fits, given every placed
    /// task, or `None` if it cannot fit inside the horizon.
    fn earliest_start(&self, task: TaskId, mode_id: ModeId) -> Option<u32> {
        let instance = self.instance;
        let mode = instance.mode(task, mode_id);
        if mode.duration > instance.horizon() {
            return None;
        }
        let mut start = 0u32;
        for edge in instance.incoming(task) {
            let bound = match edge.kind {
                EdgeKind::FinishToStart => self.finishes[edge.before.0] + edge.lag,
                EdgeKind::StartToStart => self.starts[edge.before.0] + edge.lag,
            };
            start = start.max(bound);
        }
        let latest = instance.horizon() - mode.duration;
        while start <= latest {
            match self.first_conflict(task, mode_id, start) {
                None => return Some(start),
                Some(step) => start = step + 1,
            }
        }
        None
    }

    /// First time step in `[start, start + duration)` where the candidate
    /// placement would break machine exclusivity or a cumulative cap.
    fn first_conflict(&self, task: TaskId, mode_id: ModeId, start: u32) -> Option<u32> {
        let instance = self.instance;
        let mode = instance.mode(task, mode_id);
        let end = start + mode.duration;
        let n = instance.num_tasks();
        for step in start..end {
            let mut power = mode.power;
            let mut bandwidth = mode.bandwidth;
            let mut cores = mode.cores;
            for other in 0..n {
                if !self.placed[other] || self.starts[other] > step || self.finishes[other] <= step
                {
                    continue;
                }
                let omode = instance.mode(TaskId(other), self.modes[other]);
                if omode.machine == mode.machine {
                    return Some(step);
                }
                power += omode.power;
                bandwidth += omode.bandwidth;
                cores += omode.cores;
            }
            if instance
                .power_cap()
                .is_some_and(|cap| power > cap + CAP_EPS)
            {
                return Some(step);
            }
            if instance
                .bandwidth_cap()
                .is_some_and(|cap| bandwidth > cap + CAP_EPS)
            {
                return Some(step);
            }
            if instance.core_cap().is_some_and(|cap| cores > cap) {
                return Some(step);
            }
            for (r, (_, cap)) in instance.resources().iter().enumerate() {
                let resource = ResourceId(r);
                let mut usage = mode.usage_of(resource);
                for other in 0..n {
                    if !self.placed[other]
                        || self.starts[other] > step
                        || self.finishes[other] <= step
                    {
                        continue;
                    }
                    usage += instance
                        .mode(TaskId(other), self.modes[other])
                        .usage_of(resource);
                }
                if usage > *cap + CAP_EPS {
                    return Some(step);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilp_sched::{solve_exact, InstanceBuilder, Mode, SolverConfig};

    #[test]
    fn empty_instance_has_zero_makespan() {
        let instance = InstanceBuilder::new().build().expect("empty instance");
        assert_eq!(brute_force_makespan(&instance), Some(0));
    }

    #[test]
    fn figure2_optimum_is_seven() {
        let instance = hilp_core::example2::figure2_instance();
        let result = brute_force_schedule(&instance).expect("figure 2 is feasible");
        assert_eq!(result.makespan, hilp_core::example2::UNCONSTRAINED_OPTIMUM);
        assert!(result.schedule.verify(&instance).is_empty());
    }

    #[test]
    fn lags_delay_the_optimum() {
        let mut b = InstanceBuilder::new();
        let cpu = b.add_machine("cpu");
        let gpu = b.add_machine("gpu");
        let a = b.add_task("a", vec![Mode::on(cpu, 2)]);
        let c = b.add_task("c", vec![Mode::on(gpu, 3)]);
        b.add_precedence_lagged(a, c, 4);
        b.set_horizon(20);
        let instance = b.build().expect("valid");
        // a: [0, 2), then a 4-step lag, then c: [6, 9).
        assert_eq!(brute_force_makespan(&instance), Some(9));
    }

    #[test]
    fn infeasible_horizon_returns_none() {
        let mut b = InstanceBuilder::new();
        let cpu = b.add_machine("cpu");
        let a = b.add_task("a", vec![Mode::on(cpu, 5)]);
        let c = b.add_task("c", vec![Mode::on(cpu, 5)]);
        b.add_precedence(a, c);
        b.set_horizon(8);
        let instance = b.build().expect("valid");
        assert_eq!(brute_force_makespan(&instance), None);
    }

    #[test]
    fn matches_exact_solver_on_a_six_task_resource_instance() {
        let mut b = InstanceBuilder::new();
        let m0 = b.add_machine("m0");
        let m1 = b.add_machine("m1");
        let llc = b.add_resource("llc", 10.0);
        let mut tasks = Vec::new();
        for t in 0..6 {
            let machine = if t % 2 == 0 { m0 } else { m1 };
            tasks.push(b.add_task(
                format!("t{t}"),
                vec![Mode::on(machine, 2 + (t as u32 % 3))
                    .power(2.0)
                    .uses(llc, 6.0)],
            ));
        }
        b.add_precedence(tasks[0], tasks[2]);
        b.add_precedence(tasks[1], tasks[3]);
        b.set_power_cap(7.5);
        let instance = b.build().expect("valid");
        let bf = brute_force_schedule(&instance).expect("feasible");
        assert!(bf.schedule.verify(&instance).is_empty());
        let exact = solve_exact(&instance, &SolverConfig::exact()).expect("solver feasible");
        assert!(exact.proved_optimal);
        assert_eq!(bf.makespan, exact.makespan);
    }
}
