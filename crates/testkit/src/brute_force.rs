//! Exhaustive brute-force reference scheduler for tiny instances.
//!
//! The search enumerates every *serial schedule-generation* run: every
//! precedence-feasible placement order, every mode assignment, and for each
//! (order, modes) pair the earliest feasible start of each task given what is
//! already placed. For regular objectives (makespan) over MM-RCPSP with
//! non-negative minimum time lags this enumeration contains an optimal
//! schedule (the active-schedule dominance theorem; see Kolisch/Sprecher on
//! schedule-generation schemes). The same assumption underpins the `sched`
//! branch-and-bound — and the oracle cross-checks it empirically against the
//! assumption-free time-indexed MILP encoding on capped instances.
//!
//! Feasibility during placement is decided by an independent dense time scan
//! (machine exclusivity, power/bandwidth/core caps, custom cumulative
//! resources), deliberately sharing no code with the solver's timetables so
//! that a bug in one cannot mask a bug in the other.
//!
//! # Energy
//!
//! Energy is a pure function of the mode-assignment vector (start times never
//! affect it), so for every fixed vector the SGS enumeration that contains a
//! makespan-optimal schedule also witnesses that vector's exact
//! (makespan, energy) trade-off. [`brute_force_energy`] therefore finds the
//! lexicographic (energy, makespan) optimum and [`brute_force_pareto`] the
//! complete makespan x energy Pareto front of a tiny instance. All three
//! entry points honour `Instance::energy_cap` through a reservation check:
//! a mode is admissible only if the energy already spent, plus the mode's own
//! energy, plus the cheapest possible completion of every other unplaced
//! task, fits under the cap.

use hilp_sched::{EdgeKind, Instance, ModeId, ResourceId, Schedule, TaskId};

/// Largest instance the brute force will accept. The search is
/// `O(n! · modes^n · horizon)`, so anything beyond this is impractical.
pub const MAX_BRUTE_FORCE_TASKS: usize = 6;

/// Cumulative cap comparisons share the solver's floating-point tolerance.
const CAP_EPS: f64 = 1e-9;

/// An optimal schedule found by exhaustive enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceResult {
    /// The provably optimal makespan.
    pub makespan: u32,
    /// One schedule attaining it.
    pub schedule: Schedule,
}

/// The lexicographic (energy, makespan) optimum found by exhaustive
/// enumeration: minimum total energy first, and among minimum-energy
/// schedules the minimum makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceEnergyResult {
    /// The provably minimal total energy in watt-steps.
    pub energy: f64,
    /// The minimal makespan among minimum-energy schedules.
    pub makespan: u32,
    /// One schedule attaining both.
    pub schedule: Schedule,
}

/// One point of the exact makespan x energy Pareto front of a tiny instance.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceTradeoff {
    /// Makespan in time steps.
    pub makespan: u32,
    /// Total energy in watt-steps.
    pub energy: f64,
    /// One schedule attaining this trade-off.
    pub schedule: Schedule,
}

/// Total energy of a schedule recomputed independently of
/// `Schedule::total_energy`: the sum of `power x duration` over the chosen
/// modes, accumulated in task order.
pub fn schedule_energy(instance: &Instance, schedule: &Schedule) -> f64 {
    (0..instance.num_tasks())
        .map(|t| {
            let mode = instance.mode(TaskId(t), schedule.modes[t]);
            mode.power * f64::from(mode.duration)
        })
        .sum()
}

/// The true optimal makespan of a tiny instance, or `None` if no feasible
/// schedule fits inside the horizon.
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_BRUTE_FORCE_TASKS`] tasks.
pub fn brute_force_makespan(instance: &Instance) -> Option<u32> {
    brute_force_schedule(instance).map(|r| r.makespan)
}

/// Like [`brute_force_makespan`] but also returns an optimal schedule.
pub fn brute_force_schedule(instance: &Instance) -> Option<BruteForceResult> {
    let mut search = Search::new(instance, Goal::Makespan);
    search.dfs();
    search
        .best
        .take()
        .map(|(makespan, starts, modes)| BruteForceResult {
            makespan,
            schedule: Schedule { starts, modes },
        })
}

/// The true minimum total energy of a tiny instance (and the minimum
/// makespan among minimum-energy schedules), or `None` if no feasible
/// schedule fits inside the horizon and energy cap.
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_BRUTE_FORCE_TASKS`] tasks.
pub fn brute_force_energy(instance: &Instance) -> Option<BruteForceEnergyResult> {
    let mut search = Search::new(instance, Goal::Energy);
    search.dfs();
    search
        .best_energy
        .take()
        .map(|(energy, makespan, starts, modes)| BruteForceEnergyResult {
            energy,
            makespan,
            schedule: Schedule { starts, modes },
        })
}

/// The complete makespan x energy Pareto front of a tiny instance, makespan
/// ascending (hence energy strictly descending). Empty iff the instance is
/// infeasible.
///
/// Completeness argument: energy is fixed by the mode vector, the SGS
/// enumeration realizes a makespan-optimal schedule for every feasible mode
/// vector, and the weak-dominance cut only discards branches whose every
/// completion is weakly dominated by an already-collected point.
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_BRUTE_FORCE_TASKS`] tasks.
pub fn brute_force_pareto(instance: &Instance) -> Vec<BruteForceTradeoff> {
    let mut search = Search::new(instance, Goal::Pareto);
    search.dfs();
    let mut points: Vec<BruteForceTradeoff> = search
        .front
        .drain(..)
        .map(|(makespan, energy, starts, modes)| BruteForceTradeoff {
            makespan,
            energy,
            schedule: Schedule { starts, modes },
        })
        .collect();
    points.sort_by_key(|p| p.makespan);
    points
}

/// What the exhaustive search optimizes (and how it prunes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Goal {
    /// Minimize the latest finish (the original brute force).
    Makespan,
    /// Lexicographic (energy, makespan).
    Energy,
    /// Collect every non-dominated (makespan, energy) pair.
    Pareto,
}

struct Search<'a> {
    instance: &'a Instance,
    goal: Goal,
    /// Cheapest single-mode energy per task, the admissible remainder bound.
    min_energy: Vec<f64>,
    energy_cap: Option<f64>,
    placed: Vec<bool>,
    starts: Vec<u32>,
    modes: Vec<ModeId>,
    finishes: Vec<u32>,
    num_placed: usize,
    best: Option<(u32, Vec<u32>, Vec<ModeId>)>,
    best_energy: Option<(f64, u32, Vec<u32>, Vec<ModeId>)>,
    front: Vec<(u32, f64, Vec<u32>, Vec<ModeId>)>,
}

impl<'a> Search<'a> {
    fn new(instance: &'a Instance, goal: Goal) -> Search<'a> {
        let n = instance.num_tasks();
        assert!(
            n <= MAX_BRUTE_FORCE_TASKS,
            "brute force is factorial; got {n} tasks (limit {MAX_BRUTE_FORCE_TASKS})"
        );
        let min_energy = (0..n)
            .map(|t| {
                instance
                    .task(TaskId(t))
                    .modes
                    .iter()
                    .map(hilp_sched::Mode::energy)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let mut search = Search {
            instance,
            goal,
            min_energy,
            energy_cap: instance.energy_cap(),
            placed: vec![false; n],
            starts: vec![0; n],
            modes: vec![ModeId(0); n],
            finishes: vec![0; n],
            num_placed: 0,
            best: None,
            best_energy: None,
            front: Vec::new(),
        };
        if n == 0 {
            // The empty schedule is the (only) optimum for every goal.
            search.best = Some((0, Vec::new(), Vec::new()));
            search.best_energy = Some((0.0, 0, Vec::new(), Vec::new()));
            search.front.push((0, 0.0, Vec::new(), Vec::new()));
        }
        search
    }

    /// Energy already committed by the placed tasks. Recomputed per node
    /// (n <= 6) rather than maintained incrementally so float state cannot
    /// drift across backtracks.
    fn spent_energy(&self) -> f64 {
        (0..self.instance.num_tasks())
            .filter(|&t| self.placed[t])
            .map(|t| self.instance.mode(TaskId(t), self.modes[t]).energy())
            .sum()
    }

    /// Lower bound on the energy of any completion: committed energy plus
    /// each unplaced task's cheapest mode.
    fn remaining_min_energy(&self) -> f64 {
        (0..self.instance.num_tasks())
            .filter(|&t| !self.placed[t])
            .map(|t| self.min_energy[t])
            .sum()
    }

    /// Whether every completion of the current partial is provably no better
    /// than what is already recorded. `partial` is the latest placed finish
    /// (a makespan lower bound) and `energy_lb` the energy lower bound; both
    /// are monotone under further placement, which makes each cut admissible.
    fn pruned(&self, partial: u32, energy_lb: f64) -> bool {
        match self.goal {
            Goal::Makespan => self
                .best
                .as_ref()
                .is_some_and(|(best, _, _)| partial >= *best),
            Goal::Energy => self.best_energy.as_ref().is_some_and(|(be, bm, _, _)| {
                energy_lb > *be + CAP_EPS || (energy_lb >= *be - CAP_EPS && partial >= *bm)
            }),
            Goal::Pareto => self
                .front
                .iter()
                .any(|(m, e, _, _)| *m <= partial && *e <= energy_lb + CAP_EPS),
        }
    }

    /// Record a complete feasible schedule with the given makespan/energy.
    fn record(&mut self, makespan: u32, energy: f64) {
        match self.goal {
            // `pruned` already rejected non-improving leaves for Makespan and
            // Pareto; Energy rechecks the lexicographic order explicitly.
            Goal::Makespan => {
                self.best = Some((makespan, self.starts.clone(), self.modes.clone()));
            }
            Goal::Energy => {
                let better = match &self.best_energy {
                    None => true,
                    Some((be, bm, _, _)) => {
                        energy < *be - CAP_EPS || (energy <= *be + CAP_EPS && makespan < *bm)
                    }
                };
                if better {
                    self.best_energy =
                        Some((energy, makespan, self.starts.clone(), self.modes.clone()));
                }
            }
            Goal::Pareto => {
                self.front
                    .retain(|(m, e, _, _)| !(makespan <= *m && energy <= *e + CAP_EPS));
                self.front
                    .push((makespan, energy, self.starts.clone(), self.modes.clone()));
            }
        }
    }

    fn dfs(&mut self) {
        let n = self.instance.num_tasks();
        let partial = (0..n)
            .filter(|&t| self.placed[t])
            .map(|t| self.finishes[t])
            .max()
            .unwrap_or(0);
        let spent = self.spent_energy();
        let energy_lb = spent + self.remaining_min_energy();
        if self.pruned(partial, energy_lb) {
            return;
        }
        if self.num_placed == n {
            self.record(partial, spent);
            return;
        }
        for t in 0..n {
            if self.placed[t] {
                continue;
            }
            let task = TaskId(t);
            if !self
                .instance
                .predecessors(task)
                .iter()
                .all(|p| self.placed[p.0])
            {
                continue;
            }
            for m in 0..self.instance.task(task).modes.len() {
                let mode_id = ModeId(m);
                let mode_energy = self.instance.mode(task, mode_id).energy();
                // Reservation check: after paying for this mode, every other
                // unplaced task must still fit its cheapest mode under the
                // energy cap, or no completion of this branch is admissible.
                if let Some(cap) = self.energy_cap {
                    let others = self.remaining_min_energy() - self.min_energy[t];
                    if spent + mode_energy + others > cap + CAP_EPS {
                        continue;
                    }
                }
                if let Some(start) = self.earliest_start(task, mode_id) {
                    let duration = self.instance.mode(task, mode_id).duration;
                    self.placed[t] = true;
                    self.starts[t] = start;
                    self.modes[t] = mode_id;
                    self.finishes[t] = start + duration;
                    self.num_placed += 1;
                    self.dfs();
                    self.num_placed -= 1;
                    self.placed[t] = false;
                }
            }
        }
    }

    /// Earliest start at which `task` in `mode_id` fits, given every placed
    /// task, or `None` if it cannot fit inside the horizon.
    fn earliest_start(&self, task: TaskId, mode_id: ModeId) -> Option<u32> {
        let instance = self.instance;
        let mode = instance.mode(task, mode_id);
        if mode.duration > instance.horizon() {
            return None;
        }
        let mut start = 0u32;
        for edge in instance.incoming(task) {
            let bound = match edge.kind {
                EdgeKind::FinishToStart => self.finishes[edge.before.0] + edge.lag,
                EdgeKind::StartToStart => self.starts[edge.before.0] + edge.lag,
            };
            start = start.max(bound);
        }
        let latest = instance.horizon() - mode.duration;
        while start <= latest {
            match self.first_conflict(task, mode_id, start) {
                None => return Some(start),
                Some(step) => start = step + 1,
            }
        }
        None
    }

    /// First time step in `[start, start + duration)` where the candidate
    /// placement would break machine exclusivity or a cumulative cap.
    fn first_conflict(&self, task: TaskId, mode_id: ModeId, start: u32) -> Option<u32> {
        let instance = self.instance;
        let mode = instance.mode(task, mode_id);
        let end = start + mode.duration;
        let n = instance.num_tasks();
        for step in start..end {
            let mut power = mode.power;
            let mut bandwidth = mode.bandwidth;
            let mut cores = mode.cores;
            for other in 0..n {
                if !self.placed[other] || self.starts[other] > step || self.finishes[other] <= step
                {
                    continue;
                }
                let omode = instance.mode(TaskId(other), self.modes[other]);
                if omode.machine == mode.machine {
                    return Some(step);
                }
                power += omode.power;
                bandwidth += omode.bandwidth;
                cores += omode.cores;
            }
            if instance
                .power_cap()
                .is_some_and(|cap| power > cap + CAP_EPS)
            {
                return Some(step);
            }
            if instance
                .bandwidth_cap()
                .is_some_and(|cap| bandwidth > cap + CAP_EPS)
            {
                return Some(step);
            }
            if instance.core_cap().is_some_and(|cap| cores > cap) {
                return Some(step);
            }
            for (r, (_, cap)) in instance.resources().iter().enumerate() {
                let resource = ResourceId(r);
                let mut usage = mode.usage_of(resource);
                for other in 0..n {
                    if !self.placed[other]
                        || self.starts[other] > step
                        || self.finishes[other] <= step
                    {
                        continue;
                    }
                    usage += instance
                        .mode(TaskId(other), self.modes[other])
                        .usage_of(resource);
                }
                if usage > *cap + CAP_EPS {
                    return Some(step);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilp_sched::{solve_exact, InstanceBuilder, Mode, SolverConfig};

    #[test]
    fn empty_instance_has_zero_makespan() {
        let instance = InstanceBuilder::new().build().expect("empty instance");
        assert_eq!(brute_force_makespan(&instance), Some(0));
    }

    #[test]
    fn figure2_optimum_is_seven() {
        let instance = hilp_core::example2::figure2_instance();
        let result = brute_force_schedule(&instance).expect("figure 2 is feasible");
        assert_eq!(result.makespan, hilp_core::example2::UNCONSTRAINED_OPTIMUM);
        assert!(result.schedule.verify(&instance).is_empty());
    }

    #[test]
    fn lags_delay_the_optimum() {
        let mut b = InstanceBuilder::new();
        let cpu = b.add_machine("cpu");
        let gpu = b.add_machine("gpu");
        let a = b.add_task("a", vec![Mode::on(cpu, 2)]);
        let c = b.add_task("c", vec![Mode::on(gpu, 3)]);
        b.add_precedence_lagged(a, c, 4);
        b.set_horizon(20);
        let instance = b.build().expect("valid");
        // a: [0, 2), then a 4-step lag, then c: [6, 9).
        assert_eq!(brute_force_makespan(&instance), Some(9));
    }

    #[test]
    fn infeasible_horizon_returns_none() {
        let mut b = InstanceBuilder::new();
        let cpu = b.add_machine("cpu");
        let a = b.add_task("a", vec![Mode::on(cpu, 5)]);
        let c = b.add_task("c", vec![Mode::on(cpu, 5)]);
        b.add_precedence(a, c);
        b.set_horizon(8);
        let instance = b.build().expect("valid");
        assert_eq!(brute_force_makespan(&instance), None);
    }

    /// Two tasks, each with a fast/high-power mode (duration 2, power 4.0,
    /// energy 8) and a slow/low-power mode (duration 4, power 1.0, energy 4),
    /// on separate machines.
    fn tradeoff_instance(energy_cap: Option<f64>) -> hilp_sched::Instance {
        let mut b = InstanceBuilder::new();
        let m0 = b.add_machine("m0");
        let m1 = b.add_machine("m1");
        for (t, m) in [m0, m1].into_iter().enumerate() {
            b.add_task(
                format!("t{t}"),
                vec![Mode::on(m, 2).power(4.0), Mode::on(m, 4).power(1.0)],
            );
        }
        b.set_horizon(16);
        if let Some(cap) = energy_cap {
            b.set_energy_cap(cap);
        }
        b.build().expect("valid")
    }

    #[test]
    fn energy_goal_finds_the_lexicographic_optimum() {
        let instance = tradeoff_instance(None);
        let result = brute_force_energy(&instance).expect("feasible");
        // Both tasks in their slow modes: energy 8, makespan 4 (parallel).
        assert!((result.energy - 8.0).abs() < 1e-9);
        assert_eq!(result.makespan, 4);
        assert!(result.schedule.verify(&instance).is_empty());
        assert!((schedule_energy(&instance, &result.schedule) - result.energy).abs() < 1e-9);
    }

    #[test]
    fn pareto_goal_enumerates_the_full_front() {
        let instance = tradeoff_instance(None);
        let front = brute_force_pareto(&instance);
        // (2, 16): both fast; (4, 8): both slow. The mixed vector
        // (makespan 4, energy 12) is dominated by both-slow.
        let pairs: Vec<(u32, f64)> = front.iter().map(|p| (p.makespan, p.energy)).collect();
        assert_eq!(pairs, vec![(2, 16.0), (4, 8.0)]);
        for point in &front {
            assert!(point.schedule.verify(&instance).is_empty());
            assert!((schedule_energy(&instance, &point.schedule) - point.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn energy_cap_restricts_every_goal() {
        // Cap 12 rules out both-fast (energy 16): the best remaining
        // makespan is 4, and one fast + one slow (4, 12) is dominated by
        // both-slow (4, 8), leaving a single front point.
        let instance = tradeoff_instance(Some(12.0));
        let best = brute_force_schedule(&instance).expect("feasible");
        assert_eq!(best.makespan, 4);
        assert!(schedule_energy(&instance, &best.schedule) <= 12.0 + 1e-9);
        assert!(best.schedule.verify(&instance).is_empty());
        let pairs: Vec<(u32, f64)> = brute_force_pareto(&instance)
            .iter()
            .map(|p| (p.makespan, p.energy))
            .collect();
        assert_eq!(pairs, vec![(4, 8.0)]);
    }

    #[test]
    fn infeasible_energy_cap_returns_nothing() {
        // Minimum total energy is 8; a cap of 6 admits no schedule.
        let instance = tradeoff_instance(Some(6.0));
        assert_eq!(brute_force_makespan(&instance), None);
        assert!(brute_force_energy(&instance).is_none());
        assert!(brute_force_pareto(&instance).is_empty());
    }

    #[test]
    fn energy_matches_the_exact_solver_under_the_energy_objective() {
        let instance = tradeoff_instance(None);
        let bf = brute_force_energy(&instance).expect("feasible");
        let config = SolverConfig {
            objective: hilp_sched::Objective::Energy,
            ..SolverConfig::exact()
        };
        let outcome = solve_exact(&instance, &config).expect("solver feasible");
        assert!((outcome.energy - bf.energy).abs() < 1e-9);
        assert_eq!(outcome.makespan, bf.makespan);
    }

    #[test]
    fn pareto_matches_the_exact_solver_ladder() {
        let instance = tradeoff_instance(None);
        let bf = brute_force_pareto(&instance);
        let front = hilp_sched::solve_pareto(&instance, &SolverConfig::exact()).expect("feasible");
        assert!(front.complete);
        let solver: Vec<(u32, f64)> = front
            .points
            .iter()
            .map(|p| (p.makespan, p.energy))
            .collect();
        let brute: Vec<(u32, f64)> = bf.iter().map(|p| (p.makespan, p.energy)).collect();
        assert_eq!(solver, brute);
    }

    #[test]
    fn matches_exact_solver_on_a_six_task_resource_instance() {
        let mut b = InstanceBuilder::new();
        let m0 = b.add_machine("m0");
        let m1 = b.add_machine("m1");
        let llc = b.add_resource("llc", 10.0);
        let mut tasks = Vec::new();
        for t in 0..6 {
            let machine = if t % 2 == 0 { m0 } else { m1 };
            tasks.push(b.add_task(
                format!("t{t}"),
                vec![Mode::on(machine, 2 + (t as u32 % 3))
                    .power(2.0)
                    .uses(llc, 6.0)],
            ));
        }
        b.add_precedence(tasks[0], tasks[2]);
        b.add_precedence(tasks[1], tasks[3]);
        b.set_power_cap(7.5);
        let instance = b.build().expect("valid");
        let bf = brute_force_schedule(&instance).expect("feasible");
        assert!(bf.schedule.verify(&instance).is_empty());
        let exact = solve_exact(&instance, &SolverConfig::exact()).expect("solver feasible");
        assert!(exact.proved_optimal);
        assert_eq!(bf.makespan, exact.makespan);
    }
}
