//! Shared random generators for the differential oracle and the workspace
//! property tests.
//!
//! Promoted and generalized from the ad-hoc strategies that used to live in
//! `crates/sched/src/proptests.rs`; every consumer (the sched proptests, the
//! top-level oracle tests, and the `fuzz_smoke` binary) now draws from the
//! same distributions, so a generator improvement benefits all of them.
//!
//! Generated instances are valid by construction: cumulative caps are drawn
//! at or above the largest single-mode usage, so `InstanceBuilder::build`
//! never rejects a drawn instance. Horizons may optionally be tightened below
//! the sequential fallback, which intentionally produces some *infeasible*
//! instances — the oracle checks that all solvers agree on infeasibility too.

use proptest::prelude::*;

use hilp_sched::{Instance, InstanceBuilder, MachineId, Mode, ResourceId};
use hilp_soc::{Constraints, DsaSpec, SocSpec};
use hilp_workloads::{Application, GpuProfile, Phase, PhaseKind, Workload};

/// Probability (percent) that any given upper-triangle task pair gets a
/// precedence edge.
const EDGE_PERCENT: u8 = 35;

/// DSA keys shared between [`arb_workload`] and [`arb_soc`] so that drawn
/// SoCs sometimes accelerate drawn phases.
pub const DSA_KEYS: [&str; 3] = ["LUD", "HS", "SRAD"];

/// Tunable shape of a random scheduling instance.
#[derive(Debug, Clone)]
pub struct InstanceParams {
    /// Minimum number of tasks (inclusive).
    pub min_tasks: usize,
    /// Maximum number of tasks (inclusive).
    pub max_tasks: usize,
    /// Number of machines (≥ 1).
    pub machines: usize,
    /// Maximum mode duration in steps (≥ 1).
    pub max_duration: u8,
    /// Whether tasks may get a second, cap-free alternative mode.
    pub alt_modes: bool,
    /// Whether edges may carry lags and start-to-start (initiation-interval)
    /// semantics.
    pub lags: bool,
    /// Whether power/bandwidth/core caps may be drawn.
    pub caps: bool,
    /// Whether a custom cumulative resource may be drawn.
    pub custom_resource: bool,
    /// Whether the horizon may be tightened below the always-feasible
    /// sequential fallback (producing some infeasible instances).
    pub tight_horizons: bool,
}

impl InstanceParams {
    /// Instances small enough for the exhaustive brute-force reference
    /// (2–5 tasks), with every feature enabled.
    pub fn tiny() -> Self {
        Self {
            min_tasks: 2,
            max_tasks: 5,
            machines: 3,
            max_duration: 4,
            alt_modes: true,
            lags: true,
            caps: true,
            custom_resource: true,
            tight_horizons: true,
        }
    }

    /// Instances beyond brute-force reach (6–10 tasks) for solver-vs-solver
    /// and bounds-sandwich checks.
    pub fn small() -> Self {
        Self {
            min_tasks: 6,
            max_tasks: 10,
            machines: 3,
            max_duration: 8,
            alt_modes: true,
            lags: true,
            caps: true,
            custom_resource: true,
            tight_horizons: false,
        }
    }
}

/// Random multi-mode instances with precedence (optionally lagged and
/// start-to-start), cumulative caps, custom resources, and occasionally
/// tight horizons, per `params`.
pub fn arb_instance(params: InstanceParams) -> BoxedStrategy<Instance> {
    (params.min_tasks..=params.max_tasks)
        .prop_flat_map(move |n| {
            let p = params.clone();
            let machines = p.machines as u8;
            (
                Just((n, p.clone())),
                // Per task: (machine, duration, power, bandwidth, cores, resource).
                prop::collection::vec(
                    (
                        0..machines,
                        1..=p.max_duration,
                        0..=6u8,
                        0..=6u8,
                        0..=3u8,
                        0..=5u8,
                    ),
                    n,
                ),
                // Optional cap-free alternative mode per task.
                prop::collection::vec(prop::option::of((0..machines, 1..=p.max_duration)), n),
                // Per upper-triangle pair: (percent roll, lag, start-to-start?).
                prop::collection::vec((0..100u8, 0..=3u8, prop::bool::ANY), n * (n - 1) / 2),
                // Cap magnitudes and which caps are active.
                (
                    (6..=12u8, 6..=12u8, 3..=5u8, 5..=9u8),
                    (
                        prop::bool::ANY,
                        prop::bool::ANY,
                        prop::bool::ANY,
                        prop::bool::ANY,
                    ),
                ),
                // Horizon tightening: (tighten?, percent of the default kept).
                (prop::bool::ANY, 55..=100u8),
            )
        })
        .prop_map(
            |((n, p), task_seeds, alt_seeds, edge_seeds, caps, horizon)| {
                realize_instance(n, &p, &task_seeds, &alt_seeds, &edge_seeds, caps, horizon)
            },
        )
        .boxed()
}

type TaskSeed = (u8, u8, u8, u8, u8, u8);
type CapSeed = ((u8, u8, u8, u8), (bool, bool, bool, bool));

#[allow(clippy::too_many_arguments)]
fn realize_instance(
    n: usize,
    p: &InstanceParams,
    task_seeds: &[TaskSeed],
    alt_seeds: &[Option<(u8, u8)>],
    edge_seeds: &[(u8, u8, bool)],
    ((power_cap, bw_cap, core_cap, res_cap), (use_power, use_bw, use_cores, use_res)): CapSeed,
    (tighten, keep_percent): (bool, u8),
) -> Instance {
    let mut b = InstanceBuilder::new();
    let machines: Vec<MachineId> = (0..p.machines)
        .map(|i| b.add_machine(format!("m{i}")))
        .collect();
    let resource =
        (p.custom_resource && use_res).then(|| b.add_resource("shared", f64::from(res_cap) * 1.5));
    let mut tasks = Vec::with_capacity(n);
    let mut seq_horizon = 1u32;
    for t in 0..n {
        let (m, dur, power, bw, cores, res) = task_seeds[t];
        let mut mode = Mode::on(machines[usize::from(m) % p.machines], u32::from(dur))
            .power(f64::from(power))
            .bandwidth(f64::from(bw) * 1.25)
            .cores(u32::from(cores));
        if let Some(r) = resource {
            mode = mode.uses(r, f64::from(res) * 1.5);
        }
        let mut max_dur = u32::from(dur);
        let mut modes = vec![mode];
        if p.alt_modes {
            if let Some((am, adur)) = alt_seeds[t] {
                modes.push(Mode::on(
                    machines[usize::from(am) % p.machines],
                    u32::from(adur),
                ));
                max_dur = max_dur.max(u32::from(adur));
            }
        }
        seq_horizon += max_dur;
        tasks.push(b.add_task(format!("t{t}"), modes));
    }
    let mut e = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let (roll, lag, start_to_start) = edge_seeds[e];
            e += 1;
            if roll < EDGE_PERCENT {
                let lag = if p.lags { u32::from(lag) } else { 0 };
                seq_horizon += lag;
                if p.lags && start_to_start {
                    b.add_initiation_interval(tasks[i], tasks[j], lag);
                } else {
                    b.add_precedence_lagged(tasks[i], tasks[j], lag);
                }
            }
        }
    }
    if p.caps {
        // Every cap is at least the largest single-mode usage, so no task
        // loses all its modes and `build` cannot fail.
        if use_power {
            b.set_power_cap(f64::from(power_cap));
        }
        if use_bw {
            b.set_bandwidth_cap(f64::from(bw_cap) * 1.25);
        }
        if use_cores {
            b.set_core_cap(u32::from(core_cap));
        }
    }
    if p.tight_horizons && tighten {
        b.set_horizon((seq_horizon * u32::from(keep_percent) / 100).max(1));
    }
    b.build().expect("strategy-generated instances are valid")
}

/// Random synthetic workloads: 1–3 applications of 1–3 phases each, with
/// optional GPU/DSA acceleration profiles and chain or pipelined
/// (start-to-start) phase dependencies.
pub fn arb_workload() -> BoxedStrategy<Workload> {
    let phase = (
        0.5..=25.0f64,
        prop::bool::ANY,
        prop::option::of((0.1..=10.0f64, 0.3..=0.9f64, 10.0..=100.0f64, 0.2..=0.8f64)),
        prop::bool::ANY,
        0..=5u8,
        0.5..=8.0f64,
    );
    let app = (
        prop::collection::vec(phase, 1..=3usize),
        prop::bool::ANY,
        prop::option::of(0.05..=2.0f64),
    );
    prop::collection::vec(app, 1..=3usize)
        .prop_map(|apps| {
            let apps = apps
                .into_iter()
                .enumerate()
                .map(|(a, (phases, chain, pipeline))| {
                    realize_application(a, phases, chain, pipeline)
                })
                .collect();
            Workload::new("fuzz", apps)
        })
        .boxed()
}

type PhaseSeed = (f64, bool, Option<(f64, f64, f64, f64)>, bool, u8, f64);

fn realize_application(
    app_index: usize,
    phase_seeds: Vec<PhaseSeed>,
    chain: bool,
    pipeline: Option<f64>,
) -> Application {
    let num_phases = phase_seeds.len();
    let phases = phase_seeds
        .into_iter()
        .enumerate()
        .map(
            |(i, (cpu_seconds, cpu_parallel, accel_seed, gpu, dsa_idx, cpu_bw))| {
                let accel = accel_seed.map(|(secs, time_exp, bw, bw_exp)| GpuProfile {
                    seconds_at_14sm: secs,
                    time_exponent: -time_exp,
                    bandwidth_at_14sm_gbps: bw,
                    bandwidth_exponent: bw_exp,
                });
                let has_accel = accel.is_some();
                Phase {
                    name: format!("app{app_index}.p{i}"),
                    kind: PhaseKind::Custom,
                    cpu_seconds: Some(cpu_seconds),
                    cpu_parallel,
                    accel,
                    gpu_eligible: gpu && has_accel,
                    dsa_key: (has_accel && usize::from(dsa_idx) < DSA_KEYS.len())
                        .then(|| DSA_KEYS[usize::from(dsa_idx)].to_string()),
                    cpu_bandwidth_gbps: cpu_bw,
                }
            },
        )
        .collect();
    let mut dependencies = Vec::new();
    let mut start_dependencies = Vec::new();
    if let Some(seconds) = pipeline {
        for k in 0..num_phases.saturating_sub(1) {
            start_dependencies.push((k, k + 1, seconds));
        }
    } else if chain {
        for k in 0..num_phases.saturating_sub(1) {
            dependencies.push((k, k + 1));
        }
    }
    Application {
        name: format!("app{app_index}"),
        phases,
        dependencies,
        start_dependencies,
    }
}

/// Random SoC specs: 1–6 CPU cores, an optional GPU, and up to two DSAs
/// whose keys overlap [`arb_workload`]'s phase keys.
pub fn arb_soc() -> BoxedStrategy<SocSpec> {
    (
        1..=6u32,
        prop::option::of(4..=32u32),
        prop::collection::vec((4..=32u32, 0..=2u8), 0..=2usize),
    )
        .prop_map(|(cores, gpu, dsas)| {
            let mut soc = SocSpec::new(cores);
            if let Some(sms) = gpu {
                soc = soc.with_gpu(sms);
            }
            for (pes, key) in dsas {
                soc = soc.with_dsa(DsaSpec::new(pes, DSA_KEYS[usize::from(key)]));
            }
            soc
        })
        .boxed()
}

/// Random constraint sets: optional power and bandwidth budgets drawn wide
/// enough that CPU fallback modes stay feasible.
pub fn arb_constraints() -> BoxedStrategy<Constraints> {
    (
        prop::option::of(100.0..=800.0f64),
        prop::option::of(100.0..=900.0f64),
    )
        .prop_map(|(power, bandwidth)| {
            let mut c = Constraints::unconstrained();
            if let Some(watts) = power {
                c = c.with_power(watts);
            }
            if let Some(gbps) = bandwidth {
                c = c.with_bandwidth(gbps);
            }
            c
        })
        .boxed()
}

/// One random timetable operation: `((machine, duration, est),
/// (power, bandwidth, cores, resource), unplace_instead)`. Consumed by the
/// sched timetable differential proptest.
pub type TimetableOp = ((u8, u8, u8), (u8, u8, u8, u8), bool);

/// Random sequences of timetable place/probe/unplace operations.
pub fn timetable_ops() -> BoxedStrategy<Vec<TimetableOp>> {
    prop::collection::vec(
        (
            (0..3u8, 1..=24u8, 0..=120u8),
            (0..=6u8, 0..=6u8, 0..=3u8, 0..=6u8),
            prop::bool::ANY,
        ),
        1..48,
    )
    .boxed()
}

/// A machine/cap shell for driving timetables directly (no tasks: probes and
/// placements use ad-hoc modes from [`op_mode`]).
pub fn shell_instance() -> (Instance, ResourceId) {
    let mut b = InstanceBuilder::new();
    b.add_machine("m0");
    b.add_machine("m1");
    b.add_machine("m2");
    let res = b.add_resource("shared", 7.5);
    b.set_power_cap(8.25);
    b.set_bandwidth_cap(9.5);
    b.set_core_cap(4);
    b.set_horizon(400);
    (b.build().expect("valid shell"), res)
}

/// The ad-hoc mode a [`TimetableOp`] places on the [`shell_instance`].
pub fn op_mode(op: &TimetableOp, res: ResourceId) -> Mode {
    let ((machine, duration, _), (power, bandwidth, cores, extra), _) = *op;
    Mode::on(MachineId(usize::from(machine % 3)), u32::from(duration))
        .power(f64::from(power) * 0.75)
        .bandwidth(f64::from(bandwidth) * 1.25)
        .cores(u32::from(cores))
        .uses(res, f64::from(extra) * 1.5)
}
