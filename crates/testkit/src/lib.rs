//! Cross-solver differential oracle for the HILP reproduction.
//!
//! The workspace produces makespans through several independent code paths:
//! the `sched` branch-and-bound ([`hilp_sched::solve_exact`]), the serial-SGS
//! list heuristics ([`hilp_sched::solve_heuristic`]), the online greedy
//! dispatcher ([`hilp_sched::online`]), the disjunctive big-M MILP encoding
//! ([`hilp_core::milp_encode`]), and the time-indexed MILP encoding
//! ([`hilp_core::time_indexed`]). HILP's headline claim — a makespan provably
//! within 10% of optimal — is only as trustworthy as the agreement between
//! those paths, so this crate checks them against each other and against an
//! exhaustive brute-force reference on thousands of random instances.
//!
//! The crate has three layers:
//!
//! * [`brute_force`] — an exhaustive reference scheduler for tiny instances
//!   (≤ [`brute_force::MAX_BRUTE_FORCE_TASKS`] tasks) that returns the true
//!   optimum, against which every other solver is judged.
//! * [`strategies`] — reusable proptest generators for random scheduling
//!   instances, workloads, SoCs, and constraint sets, promoted from the
//!   ad-hoc copies that used to live inside `crates/sched`.
//! * [`harness`] — the differential checks themselves: per random case the
//!   bounds sandwich, brute-force equality, heuristic domination, MILP
//!   agreement within the reported gap, and the metamorphic properties
//!   (time scaling, cap relaxation, task permutation).
//!
//! The `fuzz_smoke` binary drives the harness under a case/time budget and is
//! wired into CI both as a PR-gating smoke (fixed seed) and as a nightly job
//! with a larger budget.

#![warn(missing_docs)]

pub mod brute_force;
pub mod delta;
pub mod harness;
pub mod strategies;

pub use brute_force::{
    brute_force_energy, brute_force_makespan, brute_force_pareto, brute_force_schedule,
    schedule_energy, BruteForceEnergyResult, BruteForceResult, BruteForceTradeoff,
};
pub use delta::{apply_perturbation, arb_perturbation, check_delta, PerturbAxis, Perturbation};
pub use harness::{
    check_budgeted, check_energy, check_instance, check_pipeline, scale_power, scale_time,
    with_energy_cap, CheckStats, Disagreement, OracleConfig,
};
pub use strategies::{arb_constraints, arb_instance, arb_soc, arb_workload, InstanceParams};
