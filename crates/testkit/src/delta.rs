//! Differential pinning of incremental delta-solving.
//!
//! [`check_delta`] is the oracle for `hilp_sched::delta_solve`: apply a
//! random single-axis perturbation to a solved instance, answer it
//! incrementally, and demand the result is **bit-identical** to a
//! from-scratch solve of the perturbed instance — makespan, bound,
//! schedule, optimality flags, everything. Incremental repair is the
//! classic source of subtle staleness bugs; this harness is why the
//! delta solver gets to exist.

use proptest::{BoxedStrategy, Strategy};

use hilp_sched::{
    delta_solve, solve, DeltaPath, Instance, InstanceBuilder, Mode, SolverConfig, TaskId,
};

use crate::harness::{CheckStats, Disagreement};

/// Which single axis a [`Perturbation`] nudges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerturbAxis {
    /// No change at all: the rebuilt instance must fingerprint-match the
    /// original, covering the identity tier of the delta ladder.
    Identity,
    /// One mode's duration, up (tightening) or down (loosening).
    Duration,
    /// One precedence edge's lag, up or down.
    Lag,
    /// The power cap, scaled down (tightening, clamped so every task
    /// keeps a feasible mode) or dropped entirely (loosening).
    PowerCap,
    /// The bandwidth cap, same scheme as the power cap.
    BandwidthCap,
    /// The horizon, up or down (down may make the instance infeasible —
    /// the oracle then demands both paths agree on infeasibility).
    Horizon,
    /// Remove one alternative mode from a multi-mode task (a pure
    /// mode-subset tightening).
    DropMode,
    /// Append an independent task (a task-set change, which the delta
    /// classifier must refuse to certify).
    AddTask,
}

/// A single-axis random edit of a scheduling instance, drawn by
/// [`arb_perturbation`] and applied by [`apply_perturbation`].
#[derive(Debug, Clone, Copy)]
pub struct Perturbation {
    /// The axis being nudged.
    pub axis: PerturbAxis,
    /// Raw selector for *which* task/mode/edge on that axis; reduced
    /// modulo the relevant count, so any value is valid.
    pub selector: u64,
    /// Nudge size in steps (1..=3).
    pub magnitude: u32,
    /// Direction: `true` grows the touched quantity.
    pub grow: bool,
}

/// Random single-axis perturbations, uniform over the axes.
pub fn arb_perturbation() -> BoxedStrategy<Perturbation> {
    (0..8u8, 0..u64::MAX, 1..=3u32, proptest::prop::bool::ANY)
        .prop_map(|(axis, selector, magnitude, grow)| Perturbation {
            axis: match axis {
                0 => PerturbAxis::Identity,
                1 => PerturbAxis::Duration,
                2 => PerturbAxis::Lag,
                3 => PerturbAxis::PowerCap,
                4 => PerturbAxis::BandwidthCap,
                5 => PerturbAxis::Horizon,
                6 => PerturbAxis::DropMode,
                _ => PerturbAxis::AddTask,
            },
            selector,
            magnitude,
            grow,
        })
        .boxed()
}

/// The tightest power cap that keeps every task at least one feasible
/// mode: the max over tasks of the min over modes of the axis usage.
fn min_cap(instance: &Instance, usage: impl Fn(&Mode) -> f64) -> f64 {
    instance
        .tasks()
        .iter()
        .map(|t| t.modes.iter().map(&usage).fold(f64::INFINITY, f64::min))
        .fold(0.0, f64::max)
}

/// Applies a [`Perturbation`] by rebuilding the instance with the one
/// axis nudged. Inapplicable selections (a lag edit on an edge-free
/// instance, a mode drop with no multi-mode task) degrade to the
/// identity rebuild — the oracle still checks *something* on such cases,
/// namely that an unchanged rebuild is recognized as an identity delta.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn apply_perturbation(instance: &Instance, p: &Perturbation) -> Instance {
    let n = instance.num_tasks();
    let sel = p.selector as usize;
    let mut b = InstanceBuilder::new();
    for name in instance.machines() {
        b.add_machine(name.clone());
    }
    for (name, cap) in instance.resources() {
        b.add_resource(name.clone(), *cap);
    }

    // Pre-resolve which concrete site the selector lands on.
    let duration_target = (p.axis == PerturbAxis::Duration && n > 0).then(|| {
        let t = sel % n;
        (t, sel / n % instance.task(TaskId(t)).modes.len().max(1))
    });
    let edges: usize = (0..n).map(|t| instance.incoming(TaskId(t)).len()).sum();
    let lag_target = (p.axis == PerturbAxis::Lag && edges > 0).then(|| sel % edges);
    let drop_target = (p.axis == PerturbAxis::DropMode).then(|| {
        let multi: Vec<usize> = (0..n)
            .filter(|&t| instance.task(TaskId(t)).modes.len() > 1)
            .collect();
        multi.get(sel % multi.len().max(1)).copied().map(|t| {
            let kept = instance.task(TaskId(t)).modes.len();
            (t, 1 + sel / multi.len().max(1) % (kept - 1))
        })
    });

    let mut tasks = Vec::with_capacity(n);
    for t in 0..n {
        let task = instance.task(TaskId(t));
        let mut modes: Vec<Mode> = task.modes.clone();
        if let Some((task_sel, mode_sel)) = duration_target {
            if task_sel == t {
                let d = &mut modes[mode_sel].duration;
                *d = if p.grow {
                    d.saturating_add(p.magnitude)
                } else {
                    d.saturating_sub(p.magnitude).max(1)
                };
            }
        }
        if let Some(Some((task_sel, mode_sel))) = drop_target {
            if task_sel == t {
                modes.remove(mode_sel);
            }
        }
        tasks.push(b.add_task(task.label.clone(), modes));
    }
    if p.axis == PerturbAxis::AddTask {
        let machine = hilp_sched::MachineId(sel % instance.num_machines().max(1));
        b.add_task("delta-extra", vec![Mode::on(machine, p.magnitude)]);
    }

    let mut edge_index = 0usize;
    for t in 0..n {
        for edge in instance.incoming(TaskId(t)) {
            let mut lag = edge.lag;
            if lag_target == Some(edge_index) {
                lag = if p.grow {
                    lag.saturating_add(p.magnitude)
                } else {
                    lag.saturating_sub(p.magnitude)
                };
            }
            edge_index += 1;
            match edge.kind {
                hilp_sched::EdgeKind::FinishToStart => {
                    b.add_precedence_lagged(tasks[edge.before.0], tasks[edge.after.0], lag);
                }
                hilp_sched::EdgeKind::StartToStart => {
                    b.add_initiation_interval(tasks[edge.before.0], tasks[edge.after.0], lag);
                }
            }
        }
    }

    let scale = |cap: Option<f64>, floor: f64| -> Option<f64> {
        if p.grow {
            // Loosening: raise the cap by half, or drop an absent one
            // (no change — stays unconstrained).
            cap.map(|c| c * 1.5)
        } else {
            // Tightening: shave a quarter off (or constrain a previously
            // uncapped axis), clamped so every task keeps a mode.
            Some((cap.unwrap_or(floor * 2.0) * 0.75).max(floor))
        }
    };
    let power = if p.axis == PerturbAxis::PowerCap {
        scale(instance.power_cap(), min_cap(instance, |m| m.power))
    } else {
        instance.power_cap()
    };
    let bandwidth = if p.axis == PerturbAxis::BandwidthCap {
        scale(instance.bandwidth_cap(), min_cap(instance, |m| m.bandwidth))
    } else {
        instance.bandwidth_cap()
    };
    if let Some(cap) = power {
        b.set_power_cap(cap);
    }
    if let Some(cap) = bandwidth {
        b.set_bandwidth_cap(cap);
    }
    if let Some(cap) = instance.core_cap() {
        b.set_core_cap(cap);
    }

    let mut horizon = instance.horizon();
    match p.axis {
        PerturbAxis::Horizon => {
            horizon = if p.grow {
                horizon.saturating_add(p.magnitude)
            } else {
                horizon.saturating_sub(p.magnitude).max(1)
            };
        }
        // Keep the appended task schedulable in principle.
        PerturbAxis::AddTask => horizon = horizon.saturating_add(p.magnitude),
        _ => {}
    }
    b.set_horizon(horizon);
    b.build()
        .expect("perturbed instances stay structurally valid")
}

/// Differentially pins one delta-solve: `parent` is solved from scratch,
/// perturbed, and the perturbed instance is answered both incrementally
/// ([`delta_solve`]) and from scratch — the two answers must be
/// bit-identical, down to the schedule, on pain of [`Disagreement`].
/// Infeasible children must be rejected by both paths. The advisory
/// repair preview, when produced, must be a feasible schedule of the
/// child with a truthful makespan.
///
/// # Errors
///
/// Returns the first [`Disagreement`] found, if any.
pub fn check_delta(
    parent: &Instance,
    perturbation: &Perturbation,
    config: &SolverConfig,
    stats: &mut CheckStats,
) -> Result<(), Disagreement> {
    let Ok(parent_outcome) = solve(parent, config) else {
        // Infeasible parents carry no schedule to repair from; the plain
        // instance oracle already covers them.
        stats.delta_skipped += 1;
        return Ok(());
    };
    let child = apply_perturbation(parent, perturbation);
    let scratch = solve(&child, config);
    let incremental = delta_solve(parent, &parent_outcome, &child, config);
    match (scratch, incremental) {
        (Ok(scratch), Ok(delta)) => {
            stats.delta_checked += 1;
            match delta.path {
                DeltaPath::Identity => stats.delta_identity += 1,
                DeltaPath::Certificate => stats.delta_certified += 1,
                DeltaPath::Scratch => {}
            }
            if delta.outcome != scratch {
                return Err(Disagreement::new(
                    "delta-vs-scratch",
                    &child,
                    format!(
                        "{:?} perturbation: delta path {:?} reported makespan {} / bound {}, \
                         from-scratch reported makespan {} / bound {} (full outcomes differ)",
                        perturbation.axis,
                        delta.path,
                        delta.outcome.makespan,
                        delta.outcome.lower_bound,
                        scratch.makespan,
                        scratch.lower_bound,
                    ),
                ));
            }
            if let Some(preview) = &delta.preview {
                let violations = preview.schedule.verify(&child);
                if !violations.is_empty() {
                    return Err(Disagreement::new(
                        "delta-preview-feasibility",
                        &child,
                        format!(
                            "{:?} perturbation: repair preview violates: {violations:?}",
                            perturbation.axis
                        ),
                    ));
                }
                if preview.schedule.makespan(&child) != preview.makespan {
                    return Err(Disagreement::new(
                        "delta-preview-makespan",
                        &child,
                        format!(
                            "{:?} perturbation: preview claims makespan {} but schedule has {}",
                            perturbation.axis,
                            preview.makespan,
                            preview.schedule.makespan(&child)
                        ),
                    ));
                }
            }
            Ok(())
        }
        (Err(_), Err(_)) => {
            stats.delta_infeasible_agreed += 1;
            Ok(())
        }
        (Ok(scratch), Err(e)) => Err(Disagreement::new(
            "delta-infeasible-scratch-feasible",
            &child,
            format!(
                "{:?} perturbation: delta solve errored ({e}) but from scratch the child \
                 schedules with makespan {}",
                perturbation.axis, scratch.makespan
            ),
        )),
        (Err(e), Ok(delta)) => Err(Disagreement::new(
            "delta-feasible-scratch-infeasible",
            &child,
            format!(
                "{:?} perturbation: from-scratch solve errored ({e}) but the delta path \
                 produced makespan {} via {:?}",
                perturbation.axis, delta.outcome.makespan, delta.path
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{fnv1a, TestRng};

    use crate::strategies::{arb_instance, InstanceParams};

    #[test]
    fn identity_perturbation_rebuilds_the_same_fingerprint() {
        let strat = arb_instance(InstanceParams::tiny());
        let hash = fnv1a("delta::identity-rebuild");
        for case in 0..50 {
            let mut rng = TestRng::new(hash, case);
            let instance = strat.generate(&mut rng);
            let p = Perturbation {
                axis: PerturbAxis::Identity,
                selector: case,
                magnitude: 1,
                grow: case % 2 == 0,
            };
            let rebuilt = apply_perturbation(&instance, &p);
            assert_eq!(
                rebuilt.fingerprint(),
                instance.fingerprint(),
                "identity rebuild drifted on case {case}"
            );
        }
    }

    #[test]
    fn every_axis_survives_the_differential_check() {
        let strat = arb_instance(InstanceParams::tiny());
        let perturbations = arb_perturbation();
        let config = SolverConfig::sweep();
        let hash = fnv1a("delta::axis-sweep");
        let mut stats = CheckStats::default();
        for case in 0..120 {
            let mut rng = TestRng::new(hash, case);
            let instance = strat.generate(&mut rng);
            let p = perturbations.generate(&mut rng);
            check_delta(&instance, &p, &config, &mut stats).unwrap();
        }
        assert!(stats.delta_checked > 0, "nothing was checked");
        assert!(
            stats.delta_identity > 0,
            "the identity tier was never taken"
        );
    }
}
