//! The differential checks: every solver path is judged against the
//! brute-force reference, the combinatorial bounds, and each other.
//!
//! [`check_instance`] runs one random scheduling instance through the whole
//! battery; [`check_pipeline`] exercises the workload → SoC → instance
//! encoding front-end. Both tally what they actually exercised into
//! [`CheckStats`] so that a fuzz run can prove it covered the interesting
//! paths (MILP comparisons, infeasibility agreements, metamorphic rounds)
//! rather than silently skipping them.

use std::fmt;

use hilp_core::milp_encode::{makespan_via_milp, MilpEncodeError};
use hilp_core::time_indexed::makespan_via_time_indexed;
use hilp_model::{ModelError, SolveLimits};
use hilp_sched::online::{online_greedy, OnlinePolicy};
use hilp_sched::{
    lower_bound, solve, solve_exact, solve_heuristic, solve_pareto, Budget, Instance,
    InstanceBuilder, Objective, SchedError, SolverConfig, TaskId, TimetableKind,
};
use hilp_soc::{Constraints, SocSpec};
use hilp_workloads::Workload;

use crate::brute_force::{
    brute_force_energy, brute_force_pareto, brute_force_schedule, schedule_energy,
    BruteForceResult, MAX_BRUTE_FORCE_TASKS,
};

/// Energy comparisons share the solver's floating-point tolerance.
const ENERGY_EPS: f64 = 1e-9;

/// What the oracle runs per case and how hard it tries.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Solver configuration used for both the exact and heuristic runs.
    pub solver: SolverConfig,
    /// Cross-check the disjunctive big-M MILP encoding (cap-free tiny
    /// instances only).
    pub milp: bool,
    /// Cross-check the time-indexed MILP encoding (tiny instances whose
    /// model stays under [`Self::max_time_indexed_binaries`]).
    pub time_indexed: bool,
    /// Check the online greedy dispatcher against the optimum.
    pub online: bool,
    /// Run the metamorphic transforms (time scaling, cap relaxation, task
    /// permutation) on brute-forceable instances.
    pub metamorphic: bool,
    /// Binary budget for the time-indexed encoding; keeps debug-mode runs
    /// fast. The encoding's own hard limit is
    /// [`hilp_core::time_indexed::MAX_BINARIES`].
    pub max_time_indexed_binaries: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            solver: SolverConfig::exact(),
            milp: true,
            time_indexed: true,
            online: true,
            metamorphic: true,
            max_time_indexed_binaries: 400,
        }
    }
}

/// Tallies of which checks a run actually exercised.
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Random cases fed to [`check_instance`].
    pub cases: u64,
    /// Cases where the exact solver found a schedule.
    pub feasible: u64,
    /// Cases where solver and brute force agreed nothing fits the horizon.
    pub infeasible_agreed: u64,
    /// Cases compared against the brute-force optimum.
    pub brute_forced: u64,
    /// Cases the exact solver proved optimal (strict equality checked).
    pub proved_optimal: u64,
    /// Disjunctive MILP comparisons performed / skipped (solver gave up).
    pub milp_checked: u64,
    /// Disjunctive MILP runs skipped because the solver hit its limits.
    pub milp_skipped: u64,
    /// Time-indexed MILP comparisons performed.
    pub time_indexed_checked: u64,
    /// Time-indexed MILP runs skipped (model too large or solver limits).
    pub time_indexed_skipped: u64,
    /// Metamorphic rounds (scale + relax + permute) completed.
    pub metamorphic_checked: u64,
    /// Heuristic solves replayed on the continuous-time interval backend
    /// and compared bit-for-bit against the configured representation.
    pub interval_checked: u64,
    /// Exact and budgeted solves replayed with a 4-worker branch and
    /// bound and compared bit-for-bit against the configured worker count.
    pub parallel_checked: u64,
    /// Budgeted anytime solves checked against the brute-force optimum.
    pub budgeted_checked: u64,
    /// Budgeted solves that were actually truncated by their budget.
    pub budgeted_truncated: u64,
    /// Pipeline cases that encoded and solved.
    pub pipeline_encoded: u64,
    /// Pipeline cases whose workload/SoC/constraints combination cannot
    /// encode (e.g. a phase with no compatible cluster).
    pub pipeline_skipped: u64,
    /// Delta-solves compared bit-for-bit against a from-scratch solve of
    /// the perturbed instance (see [`crate::delta::check_delta`]).
    pub delta_checked: u64,
    /// Delta cases answered by the identity tier (unchanged fingerprint).
    pub delta_identity: u64,
    /// Delta cases where a tightening certificate carried the parent's
    /// proven bound into the child's solve.
    pub delta_certified: u64,
    /// Delta cases where both paths agreed the child is infeasible.
    pub delta_infeasible_agreed: u64,
    /// Delta cases skipped because the parent itself was infeasible.
    pub delta_skipped: u64,
    /// Tiny cases run through the energy differential battery
    /// ([`check_energy`]).
    pub energy_checked: u64,
    /// Pareto ladders compared point-for-point against the exhaustive
    /// makespan x energy front.
    pub pareto_checked: u64,
    /// Energy-capped solves (objective caps and instance caps) reconciled
    /// against the brute-force front.
    pub energy_capped_checked: u64,
    /// Cases where the min-energy restriction legitimately exhausted the
    /// horizon (brute force confirmed only energy-hungrier modes fit).
    pub energy_restriction_infeasible: u64,
}

impl CheckStats {
    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &CheckStats) {
        self.cases += other.cases;
        self.feasible += other.feasible;
        self.infeasible_agreed += other.infeasible_agreed;
        self.brute_forced += other.brute_forced;
        self.proved_optimal += other.proved_optimal;
        self.milp_checked += other.milp_checked;
        self.milp_skipped += other.milp_skipped;
        self.time_indexed_checked += other.time_indexed_checked;
        self.time_indexed_skipped += other.time_indexed_skipped;
        self.metamorphic_checked += other.metamorphic_checked;
        self.interval_checked += other.interval_checked;
        self.parallel_checked += other.parallel_checked;
        self.budgeted_checked += other.budgeted_checked;
        self.budgeted_truncated += other.budgeted_truncated;
        self.pipeline_encoded += other.pipeline_encoded;
        self.pipeline_skipped += other.pipeline_skipped;
        self.delta_checked += other.delta_checked;
        self.delta_identity += other.delta_identity;
        self.delta_certified += other.delta_certified;
        self.delta_infeasible_agreed += other.delta_infeasible_agreed;
        self.delta_skipped += other.delta_skipped;
        self.energy_checked += other.energy_checked;
        self.pareto_checked += other.pareto_checked;
        self.energy_capped_checked += other.energy_capped_checked;
        self.energy_restriction_infeasible += other.energy_restriction_infeasible;
    }

    /// One-line human-readable summary for fuzz logs.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} cases: {} feasible, {} infeasible-agreed, {} brute-forced ({} proved optimal), \
             milp {}/{} skipped, time-indexed {}/{} skipped, {} metamorphic, {} interval-replayed, \
             {} parallel-replayed, budgeted {} ({} truncated), pipeline {} encoded / {} skipped, \
             delta {} ({} identity, {} certified, {} infeasible-agreed, {} skipped), \
             energy {} ({} pareto, {} capped, {} restriction-infeasible)",
            self.cases,
            self.feasible,
            self.infeasible_agreed,
            self.brute_forced,
            self.proved_optimal,
            self.milp_checked,
            self.milp_skipped,
            self.time_indexed_checked,
            self.time_indexed_skipped,
            self.metamorphic_checked,
            self.interval_checked,
            self.parallel_checked,
            self.budgeted_checked,
            self.budgeted_truncated,
            self.pipeline_encoded,
            self.pipeline_skipped,
            self.delta_checked,
            self.delta_identity,
            self.delta_certified,
            self.delta_infeasible_agreed,
            self.delta_skipped,
            self.energy_checked,
            self.pareto_checked,
            self.energy_capped_checked,
            self.energy_restriction_infeasible,
        )
    }
}

/// Two solver paths produced irreconcilable answers on one instance.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Which cross-check failed.
    pub check: &'static str,
    /// Human-readable description of the two sides.
    pub detail: String,
    /// Graphviz dump of the offending instance for reproduction.
    pub dot: String,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}\n--- instance ---\n{}",
            self.check, self.detail, self.dot
        )
    }
}

impl Disagreement {
    pub(crate) fn new(check: &'static str, instance: &Instance, detail: String) -> Self {
        Self {
            check,
            detail,
            dot: instance.to_dot(),
        }
    }
}

/// Run the full differential battery on one instance.
///
/// # Errors
///
/// Returns the first [`Disagreement`] found, if any.
pub fn check_instance(
    instance: &Instance,
    config: &OracleConfig,
    stats: &mut CheckStats,
) -> Result<(), Disagreement> {
    stats.cases += 1;
    let n = instance.num_tasks();
    let combinatorial_lb = lower_bound(instance);
    let exact = solve_exact(instance, &config.solver);
    let brute: Option<Option<BruteForceResult>> =
        (n <= MAX_BRUTE_FORCE_TASKS).then(|| brute_force_schedule(instance));

    if let Some(Some(bf)) = &brute {
        let violations = bf.schedule.verify(instance);
        if !violations.is_empty() {
            return Err(Disagreement::new(
                "brute-force-feasibility",
                instance,
                format!("brute force returned an infeasible schedule: {violations:?}"),
            ));
        }
        if combinatorial_lb > bf.makespan {
            return Err(Disagreement::new(
                "bounds-vs-brute-force",
                instance,
                format!(
                    "combinatorial lower bound {combinatorial_lb} exceeds the true optimum {}",
                    bf.makespan
                ),
            ));
        }
    }

    let exact_outcome = match &exact {
        Ok(outcome) => {
            stats.feasible += 1;
            let violations = outcome.schedule.verify(instance);
            if !violations.is_empty() {
                return Err(Disagreement::new(
                    "exact-feasibility",
                    instance,
                    format!("exact solver schedule violates: {violations:?}"),
                ));
            }
            if outcome.lower_bound > outcome.makespan || combinatorial_lb > outcome.makespan {
                return Err(Disagreement::new(
                    "bounds-sandwich",
                    instance,
                    format!(
                        "lower bounds (solver {}, combinatorial {combinatorial_lb}) exceed \
                         makespan {}",
                        outcome.lower_bound, outcome.makespan
                    ),
                ));
            }
            match &brute {
                Some(Some(bf)) => {
                    stats.brute_forced += 1;
                    if outcome.makespan < bf.makespan {
                        return Err(Disagreement::new(
                            "exact-below-optimum",
                            instance,
                            format!(
                                "exact solver makespan {} beats the exhaustive optimum {}",
                                outcome.makespan, bf.makespan
                            ),
                        ));
                    }
                    if outcome.lower_bound > bf.makespan {
                        return Err(Disagreement::new(
                            "lower-bound-above-optimum",
                            instance,
                            format!(
                                "solver lower bound {} exceeds the true optimum {}",
                                outcome.lower_bound, bf.makespan
                            ),
                        ));
                    }
                    if outcome.proved_optimal {
                        stats.proved_optimal += 1;
                        if outcome.makespan != bf.makespan {
                            return Err(Disagreement::new(
                                "proved-optimal-mismatch",
                                instance,
                                format!(
                                    "solver proved makespan {} optimal but brute force found {}",
                                    outcome.makespan, bf.makespan
                                ),
                            ));
                        }
                    }
                }
                Some(None) => {
                    return Err(Disagreement::new(
                        "feasibility-mismatch",
                        instance,
                        format!(
                            "exact solver found makespan {} but brute force says nothing fits \
                             the horizon",
                            outcome.makespan
                        ),
                    ));
                }
                None => {}
            }
            Some(outcome)
        }
        Err(_) => {
            match &brute {
                Some(Some(bf)) => {
                    return Err(Disagreement::new(
                        "feasibility-mismatch",
                        instance,
                        format!(
                            "exact solver claims the horizon is exhausted but brute force found \
                             makespan {}",
                            bf.makespan
                        ),
                    ));
                }
                Some(None) => stats.infeasible_agreed += 1,
                None => {}
            }
            None
        }
    };

    // Parallel-search differential: the exact solve replayed with a
    // 4-worker branch and bound must agree bit-for-bit with the configured
    // worker count — the round-based engine promises thread-independence
    // of the whole outcome, not just the makespan.
    if config.solver.bnb_threads != 4 {
        let parallel = solve_exact(
            instance,
            &SolverConfig {
                bnb_threads: 4,
                ..config.solver.clone()
            },
        );
        stats.parallel_checked += 1;
        match (&exact, &parallel) {
            (Ok(a), Ok(b)) => {
                if (a.makespan, a.lower_bound, a.proved_optimal, &a.schedule)
                    != (b.makespan, b.lower_bound, b.proved_optimal, &b.schedule)
                {
                    return Err(Disagreement::new(
                        "parallel-exact",
                        instance,
                        format!(
                            "4-worker search diverged: makespan {} vs {}, lower bound {} vs \
                             {}, proved {} vs {}",
                            a.makespan,
                            b.makespan,
                            a.lower_bound,
                            b.lower_bound,
                            a.proved_optimal,
                            b.proved_optimal
                        ),
                    ));
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => {
                return Err(Disagreement::new(
                    "parallel-exact",
                    instance,
                    format!(
                        "feasibility verdicts diverged: configured workers ok={}, 4 workers \
                         ok={}",
                        a.is_ok(),
                        b.is_ok()
                    ),
                ));
            }
        }
    }

    let heuristic = solve_heuristic(instance, &config.solver);

    // Representation differential: the continuous-time interval backend
    // must reproduce the configured backend's heuristic outcome
    // bit-for-bit — same feasibility verdict, makespan, lower bound, and
    // schedule — on every instance, not just the ones worth brute-forcing.
    if config.solver.timetable != TimetableKind::Interval {
        let interval = solve_heuristic(
            instance,
            &SolverConfig {
                timetable: TimetableKind::Interval,
                ..config.solver.clone()
            },
        );
        stats.interval_checked += 1;
        match (&heuristic, &interval) {
            (Ok(a), Ok(b)) => {
                if (a.makespan, a.lower_bound, &a.schedule)
                    != (b.makespan, b.lower_bound, &b.schedule)
                {
                    return Err(Disagreement::new(
                        "interval-representation",
                        instance,
                        format!(
                            "interval backend diverged from {:?}: makespan {} vs {}, lower \
                             bound {} vs {}",
                            config.solver.timetable,
                            a.makespan,
                            b.makespan,
                            a.lower_bound,
                            b.lower_bound
                        ),
                    ));
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => {
                return Err(Disagreement::new(
                    "interval-representation",
                    instance,
                    format!(
                        "feasibility verdicts diverged: {:?} backend ok={}, interval ok={}",
                        config.solver.timetable,
                        a.is_ok(),
                        b.is_ok()
                    ),
                ));
            }
        }
    }

    if let Ok(heuristic) = heuristic {
        let violations = heuristic.schedule.verify(instance);
        if !violations.is_empty() {
            return Err(Disagreement::new(
                "heuristic-feasibility",
                instance,
                format!("heuristic schedule violates: {violations:?}"),
            ));
        }
        if let Some(exact) = exact_outcome {
            if exact.makespan > heuristic.makespan {
                return Err(Disagreement::new(
                    "exact-above-heuristic",
                    instance,
                    format!(
                        "exact makespan {} exceeds the heuristic upper bound {}",
                        exact.makespan, heuristic.makespan
                    ),
                ));
            }
        }
        match &brute {
            Some(Some(bf)) if heuristic.makespan < bf.makespan => {
                return Err(Disagreement::new(
                    "heuristic-below-optimum",
                    instance,
                    format!(
                        "heuristic makespan {} beats the exhaustive optimum {}",
                        heuristic.makespan, bf.makespan
                    ),
                ));
            }
            Some(None) => {
                return Err(Disagreement::new(
                    "feasibility-mismatch",
                    instance,
                    format!(
                        "heuristic found makespan {} but brute force says nothing fits the \
                         horizon",
                        heuristic.makespan
                    ),
                ));
            }
            _ => {}
        }
    }

    if config.online {
        for policy in [
            OnlinePolicy::Fifo,
            OnlinePolicy::LongestFirst,
            OnlinePolicy::ShortestFirst,
            OnlinePolicy::HeterogeneityAware,
        ] {
            let Some(schedule) = online_greedy(instance, policy) else {
                continue;
            };
            let violations = schedule.verify(instance);
            if !violations.is_empty() {
                return Err(Disagreement::new(
                    "online-feasibility",
                    instance,
                    format!("online {policy:?} schedule violates: {violations:?}"),
                ));
            }
            let makespan = schedule.makespan(instance);
            match &brute {
                Some(Some(bf)) if makespan < bf.makespan => {
                    return Err(Disagreement::new(
                        "online-below-optimum",
                        instance,
                        format!(
                            "online {policy:?} makespan {makespan} beats the exhaustive \
                             optimum {}",
                            bf.makespan
                        ),
                    ));
                }
                Some(None) => {
                    return Err(Disagreement::new(
                        "feasibility-mismatch",
                        instance,
                        format!(
                            "online {policy:?} found makespan {makespan} but brute force says \
                             nothing fits the horizon"
                        ),
                    ));
                }
                _ => {}
            }
            if let Some(exact) = exact_outcome {
                if makespan < exact.lower_bound {
                    return Err(Disagreement::new(
                        "online-below-lower-bound",
                        instance,
                        format!(
                            "online {policy:?} makespan {makespan} beats the proven lower \
                             bound {}",
                            exact.lower_bound
                        ),
                    ));
                }
            }
        }
    }

    let tiny = n <= MAX_BRUTE_FORCE_TASKS;
    let cap_free = instance.power_cap().is_none()
        && instance.bandwidth_cap().is_none()
        && instance.core_cap().is_none()
        && instance.resources().is_empty();

    if config.milp && tiny && cap_free {
        match makespan_via_milp(instance, &SolveLimits::default()) {
            Ok(milp_makespan) => {
                stats.milp_checked += 1;
                reconcile_milp("milp", instance, milp_makespan, exact_outcome)?;
            }
            Err(MilpEncodeError::Model(ModelError::Infeasible)) => {
                stats.milp_checked += 1;
                if let Some(exact) = exact_outcome {
                    return Err(Disagreement::new(
                        "milp",
                        instance,
                        format!(
                            "MILP says infeasible but the exact solver found makespan {}",
                            exact.makespan
                        ),
                    ));
                }
            }
            Err(_) => stats.milp_skipped += 1,
        }
    }

    if config.time_indexed && tiny && instance.resources().is_empty() {
        let horizon = instance.horizon() as usize;
        let binaries: usize = (0..n)
            .flat_map(|t| instance.task(TaskId(t)).modes.iter())
            .map(|mode| (horizon + 1).saturating_sub(mode.duration as usize))
            .sum();
        if binaries <= config.max_time_indexed_binaries {
            match makespan_via_time_indexed(instance, &SolveLimits::default()) {
                Ok(ti_makespan) => {
                    stats.time_indexed_checked += 1;
                    reconcile_milp("time-indexed", instance, ti_makespan, exact_outcome)?;
                }
                Err(hilp_core::time_indexed::TimeIndexedError::Encode(MilpEncodeError::Model(
                    ModelError::Infeasible,
                ))) => {
                    stats.time_indexed_checked += 1;
                    if let Some(exact) = exact_outcome {
                        return Err(Disagreement::new(
                            "time-indexed",
                            instance,
                            format!(
                                "time-indexed MILP says infeasible but the exact solver found \
                                 makespan {}",
                                exact.makespan
                            ),
                        ));
                    }
                }
                Err(_) => stats.time_indexed_skipped += 1,
            }
        } else {
            stats.time_indexed_skipped += 1;
        }
    }

    if config.metamorphic && tiny {
        check_metamorphic(instance, &brute, stats)?;
    }

    Ok(())
}

/// Run an anytime (node-budgeted) solve on one instance and check the
/// truncated-result contract: the incumbent is always feasible, the reported
/// bounds sandwich holds, and on brute-forceable instances the incumbent is
/// never below (and the lower bound never above) the exhaustive optimum.
///
/// Infeasible instances (budgeted solve returns an error) are skipped: under
/// a budget the base heuristic pass may legitimately exhaust its horizon, so
/// an error here is a quality outcome, not a soundness disagreement.
///
/// # Errors
///
/// Returns the first [`Disagreement`] found, if any.
pub fn check_budgeted(
    instance: &Instance,
    node_budget: u64,
    base: &SolverConfig,
    stats: &mut CheckStats,
) -> Result<(), Disagreement> {
    let config = SolverConfig {
        budget: Budget::unlimited().with_node_limit(node_budget),
        ..base.clone()
    };
    let Ok(outcome) = solve(instance, &config) else {
        return Ok(());
    };
    stats.budgeted_checked += 1;
    if outcome.truncated.is_some() {
        stats.budgeted_truncated += 1;
    }

    let violations = outcome.schedule.verify(instance);
    if !violations.is_empty() {
        return Err(Disagreement::new(
            "budgeted-feasibility",
            instance,
            format!(
                "budgeted solve (nodes={node_budget}) returned an infeasible incumbent: \
                 {violations:?}"
            ),
        ));
    }
    if outcome.lower_bound > outcome.makespan {
        return Err(Disagreement::new(
            "budgeted-bounds-sandwich",
            instance,
            format!(
                "budgeted solve (nodes={node_budget}) reports lower bound {} above its own \
                 incumbent makespan {}",
                outcome.lower_bound, outcome.makespan
            ),
        ));
    }
    // Within the exact phase's reach, an untruncated budgeted solve must
    // have finished the search and proved its answer. (Outside the reach —
    // task threshold exceeded or the legacy `exact_node_budget` cap hit —
    // an unproved, untruncated outcome is a quality limit, not a bug.)
    let exact_reachable = config.exact_node_budget > node_budget
        && instance.num_tasks() <= config.exact_task_threshold;
    if exact_reachable && outcome.truncated.is_none() && !outcome.proved_optimal {
        return Err(Disagreement::new(
            "budgeted-untruncated-unproved",
            instance,
            format!(
                "budgeted solve (nodes={node_budget}) neither exhausted its budget nor proved \
                 optimality (makespan {}, lower bound {})",
                outcome.makespan, outcome.lower_bound
            ),
        ));
    }

    // The budgeted trajectory must be thread-independent too: the
    // allocation-style round charge pins the truncation point, so a
    // 4-worker replay (with its own fresh budget meter) agrees bit-for-bit
    // even on searches cut off mid-tree.
    if config.bnb_threads != 4 {
        let parallel = solve(
            instance,
            &SolverConfig {
                budget: Budget::unlimited().with_node_limit(node_budget),
                bnb_threads: 4,
                ..base.clone()
            },
        );
        stats.parallel_checked += 1;
        match &parallel {
            Ok(p)
                if (p.makespan, p.lower_bound, p.truncated, &p.schedule)
                    == (
                        outcome.makespan,
                        outcome.lower_bound,
                        outcome.truncated,
                        &outcome.schedule,
                    ) => {}
            Ok(p) => {
                return Err(Disagreement::new(
                    "budgeted-parallel",
                    instance,
                    format!(
                        "4-worker budgeted solve (nodes={node_budget}) diverged: makespan {} \
                         vs {}, lower bound {} vs {}, truncated {:?} vs {:?}",
                        outcome.makespan,
                        p.makespan,
                        outcome.lower_bound,
                        p.lower_bound,
                        outcome.truncated,
                        p.truncated
                    ),
                ));
            }
            Err(_) => {
                return Err(Disagreement::new(
                    "budgeted-parallel",
                    instance,
                    format!(
                        "4-worker budgeted solve (nodes={node_budget}) claims infeasibility \
                         but the configured worker count found makespan {}",
                        outcome.makespan
                    ),
                ));
            }
        }
    }

    if instance.num_tasks() <= MAX_BRUTE_FORCE_TASKS {
        if let Some(bf) = brute_force_schedule(instance) {
            if outcome.makespan < bf.makespan {
                return Err(Disagreement::new(
                    "budgeted-below-optimum",
                    instance,
                    format!(
                        "budgeted incumbent {} beats the exhaustive optimum {}",
                        outcome.makespan, bf.makespan
                    ),
                ));
            }
            if outcome.lower_bound > bf.makespan {
                return Err(Disagreement::new(
                    "budgeted-lb-above-optimum",
                    instance,
                    format!(
                        "budgeted lower bound {} exceeds the true optimum {}",
                        outcome.lower_bound, bf.makespan
                    ),
                ));
            }
        } else {
            return Err(Disagreement::new(
                "budgeted-phantom-schedule",
                instance,
                format!(
                    "budgeted solve found a schedule with makespan {} on an instance brute \
                     force proves infeasible",
                    outcome.makespan
                ),
            ));
        }
    }

    Ok(())
}

/// Run the energy differential battery on one tiny instance: energy
/// accounting, the infinite-cap transparency identity, the lexicographic
/// `Objective::Energy` against the exhaustive optimum, the Pareto ladder
/// against the exhaustive makespan x energy front, energy-capped solves
/// pinned to the front's own trade-offs (through both the objective cap and
/// an instance-level cap, the latter exercising the brute force's own
/// reservation admissibility), and a power-scaling metamorphic round.
///
/// Instances beyond [`MAX_BRUTE_FORCE_TASKS`] are skipped silently so the
/// caller can feed every case through unconditionally.
///
/// # Errors
///
/// Returns the first [`Disagreement`] found, if any.
#[allow(clippy::too_many_lines)]
pub fn check_energy(
    instance: &Instance,
    config: &OracleConfig,
    stats: &mut CheckStats,
) -> Result<(), Disagreement> {
    if instance.num_tasks() > MAX_BRUTE_FORCE_TASKS {
        return Ok(());
    }
    let bf_energy = brute_force_energy(instance);
    let bf_front = brute_force_pareto(instance);

    // Energy accounting: the reported energy is the pure mode-vector sum,
    // recomputed independently of `Schedule::total_energy`.
    let plain = solve_exact(instance, &config.solver);
    if let Ok(outcome) = &plain {
        let recomputed = schedule_energy(instance, &outcome.schedule);
        if (outcome.energy - recomputed).abs() > ENERGY_EPS
            || (outcome.schedule.total_energy(instance) - recomputed).abs() > ENERGY_EPS
        {
            return Err(Disagreement::new(
                "energy-accounting",
                instance,
                format!(
                    "solver reports energy {} but the mode vector sums to {recomputed} \
                     (Schedule::total_energy says {})",
                    outcome.energy,
                    outcome.schedule.total_energy(instance)
                ),
            ));
        }
    }

    // Transparency: an infinite energy cap must not perturb the makespan
    // solve in any observable way.
    let transparent = solve_exact(
        instance,
        &SolverConfig {
            objective: Objective::MakespanUnderEnergyCap(f64::INFINITY),
            ..config.solver.clone()
        },
    );
    match (&plain, &transparent) {
        (Ok(a), Ok(b)) => {
            if (a.makespan, a.lower_bound, a.proved_optimal, &a.schedule)
                != (b.makespan, b.lower_bound, b.proved_optimal, &b.schedule)
            {
                return Err(Disagreement::new(
                    "energy-transparency",
                    instance,
                    format!(
                        "an infinite energy cap changed the solve: makespan {} vs {}, lower \
                         bound {} vs {}, proved {} vs {}",
                        a.makespan,
                        b.makespan,
                        a.lower_bound,
                        b.lower_bound,
                        a.proved_optimal,
                        b.proved_optimal
                    ),
                ));
            }
        }
        (Err(_), Err(_)) => {}
        (a, b) => {
            return Err(Disagreement::new(
                "energy-transparency",
                instance,
                format!(
                    "an infinite energy cap changed the feasibility verdict: plain ok={}, \
                     capped ok={}",
                    a.is_ok(),
                    b.is_ok()
                ),
            ));
        }
    }

    // The Energy objective against the lexicographic brute force.
    let energy_outcome = solve_exact(
        instance,
        &SolverConfig {
            objective: Objective::Energy,
            ..config.solver.clone()
        },
    );
    match (&energy_outcome, &bf_energy) {
        (Ok(outcome), Some(bf)) => {
            let violations = outcome.schedule.verify(instance);
            if !violations.is_empty() {
                return Err(Disagreement::new(
                    "energy-objective-feasibility",
                    instance,
                    format!("energy-objective schedule violates: {violations:?}"),
                ));
            }
            let recomputed = schedule_energy(instance, &outcome.schedule);
            if (outcome.energy - recomputed).abs() > ENERGY_EPS {
                return Err(Disagreement::new(
                    "energy-accounting",
                    instance,
                    format!(
                        "energy objective reports {} but the mode vector sums to {recomputed}",
                        outcome.energy
                    ),
                ));
            }
            if (outcome.energy - bf.energy).abs() > ENERGY_EPS {
                return Err(Disagreement::new(
                    "energy-objective",
                    instance,
                    format!(
                        "energy objective found total energy {} but the exhaustive lexicographic \
                         optimum is {}",
                        outcome.energy, bf.energy
                    ),
                ));
            }
            if outcome.makespan < bf.makespan {
                return Err(Disagreement::new(
                    "energy-objective-below-optimum",
                    instance,
                    format!(
                        "energy objective makespan {} beats the exhaustive minimum-energy \
                         makespan {}",
                        outcome.makespan, bf.makespan
                    ),
                ));
            }
            if outcome.proved_optimal && outcome.makespan != bf.makespan {
                return Err(Disagreement::new(
                    "energy-objective-makespan",
                    instance,
                    format!(
                        "energy objective proved makespan {} optimal but the exhaustive \
                         lexicographic optimum reaches {}",
                        outcome.makespan, bf.makespan
                    ),
                ));
            }
        }
        (Ok(outcome), None) => {
            return Err(Disagreement::new(
                "energy-phantom",
                instance,
                format!(
                    "energy objective found a schedule (energy {}, makespan {}) on an instance \
                     brute force proves infeasible",
                    outcome.energy, outcome.makespan
                ),
            ));
        }
        (Err(SchedError::HorizonExhausted { .. }), Some(bf)) => {
            // Documented limitation: the min-energy mode restriction may not
            // fit the horizon even though energy-hungrier vectors do. That
            // excuse only holds when the true minimum energy really is above
            // the per-task floor the restriction commits to.
            if bf.energy <= instance.min_total_energy() + ENERGY_EPS {
                return Err(Disagreement::new(
                    "energy-restriction-infeasible",
                    instance,
                    format!(
                        "energy objective claims the horizon is exhausted but brute force \
                         schedules the minimum-energy floor {} (makespan {})",
                        bf.energy, bf.makespan
                    ),
                ));
            }
            stats.energy_restriction_infeasible += 1;
        }
        (Err(err), Some(bf)) => {
            return Err(Disagreement::new(
                "energy-objective-error",
                instance,
                format!(
                    "energy objective failed with `{err}` but brute force found a feasible \
                     minimum-energy schedule (energy {}, makespan {})",
                    bf.energy, bf.makespan
                ),
            ));
        }
        (Err(_), None) => {}
    }

    // The Pareto ladder against the exhaustive makespan x energy front.
    match solve_pareto(instance, &config.solver) {
        Ok(front) => {
            if bf_front.is_empty() {
                return Err(Disagreement::new(
                    "pareto-phantom",
                    instance,
                    format!(
                        "solve_pareto returned {} points on an instance brute force proves \
                         infeasible",
                        front.points.len()
                    ),
                ));
            }
            for point in &front.points {
                let violations = point.schedule.verify(instance);
                if !violations.is_empty() {
                    return Err(Disagreement::new(
                        "pareto-feasibility",
                        instance,
                        format!(
                            "Pareto point (makespan {}, energy {}) violates: {violations:?}",
                            point.makespan, point.energy
                        ),
                    ));
                }
                let recomputed = schedule_energy(instance, &point.schedule);
                if (point.energy - recomputed).abs() > ENERGY_EPS {
                    return Err(Disagreement::new(
                        "energy-accounting",
                        instance,
                        format!(
                            "Pareto point reports energy {} but the mode vector sums to \
                             {recomputed}",
                            point.energy
                        ),
                    ));
                }
                // Every solver point must be achievable, i.e. weakly
                // dominated by some point of the exhaustive front.
                if !bf_front
                    .iter()
                    .any(|b| b.makespan <= point.makespan && b.energy <= point.energy + ENERGY_EPS)
                {
                    return Err(Disagreement::new(
                        "pareto-point-impossible",
                        instance,
                        format!(
                            "Pareto point (makespan {}, energy {}) beats the exhaustive front",
                            point.makespan, point.energy
                        ),
                    ));
                }
            }
            if front.complete {
                stats.pareto_checked += 1;
                let matches = front.points.len() == bf_front.len()
                    && front.points.iter().zip(&bf_front).all(|(a, b)| {
                        a.makespan == b.makespan && (a.energy - b.energy).abs() <= ENERGY_EPS
                    });
                if !matches {
                    let solver: Vec<(u32, f64)> = front
                        .points
                        .iter()
                        .map(|p| (p.makespan, p.energy))
                        .collect();
                    let brute: Vec<(u32, f64)> =
                        bf_front.iter().map(|p| (p.makespan, p.energy)).collect();
                    return Err(Disagreement::new(
                        "pareto-front-mismatch",
                        instance,
                        format!(
                            "complete ladder {solver:?} differs from the exhaustive front \
                             {brute:?}"
                        ),
                    ));
                }
            }
        }
        Err(_) => {
            if let Some(first) = bf_front.first() {
                return Err(Disagreement::new(
                    "pareto-feasibility-mismatch",
                    instance,
                    format!(
                        "solve_pareto claims infeasibility but brute force found a front \
                         starting at (makespan {}, energy {})",
                        first.makespan, first.energy
                    ),
                ));
            }
        }
    }

    // Energy-capped solves pinned to the exhaustive front: capping at a
    // front point's energy must recover exactly that point's makespan.
    for point in bf_front.iter().take(3) {
        stats.energy_capped_checked += 1;
        let capped = solve_exact(
            instance,
            &SolverConfig {
                objective: Objective::MakespanUnderEnergyCap(point.energy),
                ..config.solver.clone()
            },
        );
        match &capped {
            Ok(outcome) => {
                if outcome.energy > point.energy + ENERGY_EPS {
                    return Err(Disagreement::new(
                        "energy-cap-violated",
                        instance,
                        format!(
                            "cap {} admitted a schedule with energy {}",
                            point.energy, outcome.energy
                        ),
                    ));
                }
                if outcome.makespan < point.makespan || outcome.lower_bound > point.makespan {
                    return Err(Disagreement::new(
                        "energy-capped-bounds",
                        instance,
                        format!(
                            "under cap {} the true optimum is {}, solver reports makespan {} \
                             with lower bound {}",
                            point.energy, point.makespan, outcome.makespan, outcome.lower_bound
                        ),
                    ));
                }
                if outcome.proved_optimal && outcome.makespan != point.makespan {
                    return Err(Disagreement::new(
                        "energy-capped-mismatch",
                        instance,
                        format!(
                            "solver proved makespan {} optimal under cap {} but the exhaustive \
                             front says {}",
                            outcome.makespan, point.energy, point.makespan
                        ),
                    ));
                }
            }
            Err(err) => {
                return Err(Disagreement::new(
                    "energy-capped-feasibility",
                    instance,
                    format!(
                        "solver failed with `{err}` under cap {} though brute force schedules \
                         exactly that energy at makespan {}",
                        point.energy, point.makespan
                    ),
                ));
            }
        }

        // The same cap applied at the instance level: exercises the brute
        // force's own reservation admissibility against the solver's filter.
        let capped_instance = with_energy_cap(instance, point.energy);
        match brute_force_schedule(&capped_instance) {
            Some(bf) if bf.makespan == point.makespan => {}
            other => {
                return Err(Disagreement::new(
                    "energy-capped-brute-force",
                    instance,
                    format!(
                        "with instance cap {} brute force found {:?} instead of the front's \
                         makespan {}",
                        point.energy,
                        other.map(|bf| bf.makespan),
                        point.makespan
                    ),
                ));
            }
        }
    }

    // Power-scaling metamorphic: tripling every power (and the power and
    // energy caps with it) scales every energy exactly x3 and leaves every
    // makespan untouched.
    const POWER_K: f64 = 3.0;
    let scaled = scale_power(instance, POWER_K);
    let scaled_energy = brute_force_energy(&scaled);
    match (&bf_energy, &scaled_energy) {
        (Some(a), Some(b)) => {
            let tolerance = ENERGY_EPS * (1.0 + a.energy.abs());
            if b.makespan != a.makespan || (b.energy - POWER_K * a.energy).abs() > tolerance {
                return Err(Disagreement::new(
                    "energy-metamorphic-scale",
                    instance,
                    format!(
                        "scaling power x{POWER_K} should map (energy {}, makespan {}) to \
                         (energy {}, makespan {}), brute force found (energy {}, makespan {})",
                        a.energy,
                        a.makespan,
                        POWER_K * a.energy,
                        a.makespan,
                        b.energy,
                        b.makespan
                    ),
                ));
            }
        }
        (None, None) => {}
        (a, b) => {
            return Err(Disagreement::new(
                "energy-metamorphic-scale",
                instance,
                format!(
                    "scaling power x{POWER_K} changed feasibility: original ok={}, scaled ok={}",
                    a.is_some(),
                    b.is_some()
                ),
            ));
        }
    }
    let scaled_front = brute_force_pareto(&scaled);
    let fronts_match = scaled_front.len() == bf_front.len()
        && scaled_front.iter().zip(&bf_front).all(|(s, o)| {
            s.makespan == o.makespan
                && (s.energy - POWER_K * o.energy).abs() <= ENERGY_EPS * (1.0 + o.energy.abs())
        });
    if !fronts_match {
        let scaled_pairs: Vec<(u32, f64)> = scaled_front
            .iter()
            .map(|p| (p.makespan, p.energy))
            .collect();
        let original_pairs: Vec<(u32, f64)> =
            bf_front.iter().map(|p| (p.makespan, p.energy)).collect();
        return Err(Disagreement::new(
            "energy-metamorphic-front",
            instance,
            format!(
                "scaling power x{POWER_K} should scale the front's energies in place; original \
                 {original_pairs:?}, scaled {scaled_pairs:?}"
            ),
        ));
    }

    stats.energy_checked += 1;
    Ok(())
}

/// Reconcile a MILP-optimal makespan with the exact solver's outcome: strict
/// equality when the solver proved optimality, otherwise the MILP optimum
/// must land inside the solver's `[lower_bound, makespan]` interval (i.e.
/// they agree within the reported optimality gap).
fn reconcile_milp(
    check: &'static str,
    instance: &Instance,
    milp_makespan: u32,
    exact: Option<&hilp_sched::SolveOutcome>,
) -> Result<(), Disagreement> {
    match exact {
        Some(outcome) if outcome.proved_optimal => {
            if milp_makespan != outcome.makespan {
                return Err(Disagreement::new(
                    check,
                    instance,
                    format!(
                        "MILP optimum {milp_makespan} != proved-optimal solver makespan {}",
                        outcome.makespan
                    ),
                ));
            }
        }
        Some(outcome) => {
            if milp_makespan < outcome.lower_bound || milp_makespan > outcome.makespan {
                return Err(Disagreement::new(
                    check,
                    instance,
                    format!(
                        "MILP optimum {milp_makespan} outside the solver's gap interval \
                         [{}, {}]",
                        outcome.lower_bound, outcome.makespan
                    ),
                ));
            }
        }
        None => {
            return Err(Disagreement::new(
                check,
                instance,
                format!(
                    "MILP found makespan {milp_makespan} but the exact solver claims the \
                     horizon is exhausted"
                ),
            ));
        }
    }
    Ok(())
}

/// The three metamorphic properties from the issue, each decided against the
/// brute-force reference so the expected answer is exact:
///
/// 1. **Time scaling**: multiplying every duration, lag, and the horizon by
///    `k` scales the optimum by exactly `k` (and preserves infeasibility).
///    Any schedule for the original maps to one for the scaled instance by
///    `s ↦ k·s`; conversely `s ↦ ⌊s/k⌋` maps back (every scaled task active
///    at original step `u` is active at scaled time `k·u + k − 1`, so caps
///    and machine exclusivity carry over), hence the optima correspond.
/// 2. **Cap relaxation**: dropping `p_max`/`b_max`/`u_max` and enlarging
///    custom resource capacities only grows the feasible set, so the optimum
///    never increases and feasible instances stay feasible.
/// 3. **Task permutation**: relabeling tasks (we reverse the order) changes
///    nothing; the optimum and feasibility are identical.
fn check_metamorphic(
    instance: &Instance,
    brute: &Option<Option<BruteForceResult>>,
    stats: &mut CheckStats,
) -> Result<(), Disagreement> {
    let Some(original) = brute else {
        return Ok(());
    };
    let original = original.as_ref().map(|bf| bf.makespan);

    const K: u32 = 3;
    let scaled = scale_time(instance, K);
    let scaled_opt = brute_force_schedule(&scaled).map(|bf| bf.makespan);
    if scaled_opt != original.map(|m| m * K) {
        return Err(Disagreement::new(
            "metamorphic-scale",
            instance,
            format!(
                "optimum {original:?} should scale by {K} to {:?}, brute force found {:?}",
                original.map(|m| m * K),
                scaled_opt
            ),
        ));
    }

    let relaxed = relax_caps(instance);
    let relaxed_opt = brute_force_schedule(&relaxed).map(|bf| bf.makespan);
    if let Some(m) = original {
        match relaxed_opt {
            Some(rm) if rm <= m => {}
            _ => {
                return Err(Disagreement::new(
                    "metamorphic-relax",
                    instance,
                    format!(
                        "relaxing caps turned optimum {m} into {relaxed_opt:?} (must stay \
                         feasible and not increase)"
                    ),
                ));
            }
        }
    }

    let permuted = permute_tasks(instance);
    let permuted_opt = brute_force_schedule(&permuted).map(|bf| bf.makespan);
    if permuted_opt != original {
        return Err(Disagreement::new(
            "metamorphic-permute",
            instance,
            format!("task relabeling changed the optimum: {original:?} -> {permuted_opt:?}"),
        ));
    }

    stats.metamorphic_checked += 1;
    Ok(())
}

/// Rebuild `instance` with every duration, lag, and the horizon multiplied
/// by `k`. The energy cap (energy = power x duration) scales with it.
#[must_use]
pub fn scale_time(instance: &Instance, k: u32) -> Instance {
    rebuild(
        instance,
        |_| 0,
        |d| d * k,
        |lag| lag * k,
        true,
        instance.horizon().saturating_mul(k),
        instance.energy_cap().map(|cap| cap * f64::from(k)),
    )
}

/// Rebuild `instance` with power/bandwidth/core/energy caps dropped and
/// custom resource capacities quadrupled.
#[must_use]
pub fn relax_caps(instance: &Instance) -> Instance {
    rebuild(
        instance,
        |_| 0,
        |d| d,
        |lag| lag,
        false,
        instance.horizon(),
        None,
    )
}

/// Rebuild `instance` with the task order reversed (a pure relabeling).
#[must_use]
pub fn permute_tasks(instance: &Instance) -> Instance {
    let n = instance.num_tasks();
    rebuild(
        instance,
        move |t| n - 1 - t,
        |d| d,
        |lag| lag,
        true,
        instance.horizon(),
        instance.energy_cap(),
    )
}

/// Rebuild `instance` with its whole-schedule energy cap replaced by `cap`;
/// everything else is untouched.
#[must_use]
pub fn with_energy_cap(instance: &Instance, cap: f64) -> Instance {
    rebuild(
        instance,
        |t| t,
        |d| d,
        |lag| lag,
        true,
        instance.horizon(),
        Some(cap),
    )
}

/// Rebuild `instance` with every mode's power — and the power and energy
/// caps with it — multiplied by `k`. Feasibility and makespans are
/// untouched; every schedule's energy scales by exactly `k`.
#[must_use]
pub fn scale_power(instance: &Instance, k: f64) -> Instance {
    let mut b = InstanceBuilder::new();
    for name in instance.machines() {
        b.add_machine(name.clone());
    }
    for (name, cap) in instance.resources() {
        b.add_resource(name.clone(), *cap);
    }
    let mut ids = Vec::with_capacity(instance.num_tasks());
    for t in 0..instance.num_tasks() {
        let task = instance.task(TaskId(t));
        let modes = task
            .modes
            .iter()
            .map(|mode| {
                let mut scaled = mode.clone();
                scaled.power = mode.power * k;
                scaled
            })
            .collect();
        ids.push(b.add_task(task.label.clone(), modes));
    }
    for t in 0..instance.num_tasks() {
        for edge in instance.incoming(TaskId(t)) {
            let before = ids[edge.before.0];
            let after = ids[edge.after.0];
            match edge.kind {
                hilp_sched::EdgeKind::FinishToStart => {
                    b.add_precedence_lagged(before, after, edge.lag);
                }
                hilp_sched::EdgeKind::StartToStart => {
                    b.add_initiation_interval(before, after, edge.lag);
                }
            }
        }
    }
    if let Some(cap) = instance.power_cap() {
        b.set_power_cap(cap * k);
    }
    if let Some(cap) = instance.bandwidth_cap() {
        b.set_bandwidth_cap(cap);
    }
    if let Some(cap) = instance.core_cap() {
        b.set_core_cap(cap);
    }
    if let Some(cap) = instance.energy_cap() {
        b.set_energy_cap(cap * k);
    }
    b.set_horizon(instance.horizon());
    b.build().expect("power-scaled instances stay valid")
}

/// Shared rebuild: `position` places original task `t` at a new index,
/// `duration`/`lag` transform times, `keep_caps` controls whether the
/// power/bandwidth/core caps carry over (custom resource capacities are
/// quadrupled when caps are dropped), and `energy_cap` is the transformed
/// whole-schedule energy budget (or `None` to drop it).
fn rebuild(
    instance: &Instance,
    position: impl Fn(usize) -> usize,
    duration: impl Fn(u32) -> u32,
    lag: impl Fn(u32) -> u32,
    keep_caps: bool,
    horizon: u32,
    energy_cap: Option<f64>,
) -> Instance {
    let n = instance.num_tasks();
    let mut b = InstanceBuilder::new();
    for name in instance.machines() {
        b.add_machine(name.clone());
    }
    for (name, cap) in instance.resources() {
        b.add_resource(name.clone(), if keep_caps { *cap } else { *cap * 4.0 });
    }
    // Original task index -> new TaskId, honoring the position map.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&t| position(t));
    let mut new_ids = vec![None; n];
    for &t in &order {
        let task = instance.task(TaskId(t));
        let modes = task
            .modes
            .iter()
            .map(|mode| {
                let mut scaled = mode.clone();
                scaled.duration = duration(mode.duration);
                scaled
            })
            .collect();
        new_ids[t] = Some(b.add_task(task.label.clone(), modes));
    }
    for t in 0..n {
        for edge in instance.incoming(TaskId(t)) {
            let before = new_ids[edge.before.0].expect("all tasks added");
            let after = new_ids[edge.after.0].expect("all tasks added");
            match edge.kind {
                hilp_sched::EdgeKind::FinishToStart => {
                    b.add_precedence_lagged(before, after, lag(edge.lag));
                }
                hilp_sched::EdgeKind::StartToStart => {
                    b.add_initiation_interval(before, after, lag(edge.lag));
                }
            }
        }
    }
    if keep_caps {
        if let Some(cap) = instance.power_cap() {
            b.set_power_cap(cap);
        }
        if let Some(cap) = instance.bandwidth_cap() {
            b.set_bandwidth_cap(cap);
        }
        if let Some(cap) = instance.core_cap() {
            b.set_core_cap(cap);
        }
    }
    if let Some(cap) = energy_cap {
        b.set_energy_cap(cap);
    }
    b.set_horizon(horizon);
    b.build().expect("transformed instances stay valid")
}

/// Run the workload → SoC → instance encoding front-end on a random
/// (workload, SoC, constraints) triple and check the resulting instance's
/// solver invariants: heuristic feasibility, the bounds sandwich, and online
/// dispatch feasibility.
///
/// # Errors
///
/// Returns the first [`Disagreement`] found, if any.
pub fn check_pipeline(
    workload: &Workload,
    soc: &SocSpec,
    constraints: &Constraints,
    stats: &mut CheckStats,
) -> Result<(), Disagreement> {
    let Ok((instance, _maps)) = hilp_core::encode(workload, soc, constraints, 1.0) else {
        stats.pipeline_skipped += 1;
        return Ok(());
    };
    stats.pipeline_encoded += 1;
    let config = SolverConfig::sweep();
    let combinatorial_lb = lower_bound(&instance);
    match solve_heuristic(&instance, &config) {
        Ok(outcome) => {
            let violations = outcome.schedule.verify(&instance);
            if !violations.is_empty() {
                return Err(Disagreement::new(
                    "pipeline-feasibility",
                    &instance,
                    format!("encoded workload schedule violates: {violations:?}"),
                ));
            }
            if outcome.lower_bound > outcome.makespan || combinatorial_lb > outcome.makespan {
                return Err(Disagreement::new(
                    "pipeline-bounds",
                    &instance,
                    format!(
                        "lower bounds (solver {}, combinatorial {combinatorial_lb}) exceed \
                         makespan {}",
                        outcome.lower_bound, outcome.makespan
                    ),
                ));
            }
            let wlp = hilp_core::average_wlp(&outcome.schedule, &instance);
            if instance.num_tasks() > 0 && wlp < 1.0 - 1e-9 {
                return Err(Disagreement::new(
                    "pipeline-wlp",
                    &instance,
                    format!("average WLP {wlp} below 1 for a non-empty schedule"),
                ));
            }
        }
        Err(_) => {
            // The heuristic may legitimately exhaust a tight horizon; the
            // online check below still runs on its own.
        }
    }
    if let Some(schedule) = online_greedy(&instance, OnlinePolicy::Fifo) {
        let violations = schedule.verify(&instance);
        if !violations.is_empty() {
            return Err(Disagreement::new(
                "pipeline-online-feasibility",
                &instance,
                format!("online schedule for encoded workload violates: {violations:?}"),
            ));
        }
        if schedule.makespan(&instance) < combinatorial_lb {
            return Err(Disagreement::new(
                "pipeline-online-below-bound",
                &instance,
                format!(
                    "online makespan {} beats the combinatorial lower bound {combinatorial_lb}",
                    schedule.makespan(&instance)
                ),
            ));
        }
    }
    Ok(())
}
