//! The SoC architecture template of the HILP reproduction.
//!
//! HILP models SoCs as a set of *core clusters* (Figure 4 of the paper):
//! CPU cores (one cluster per core), an optional GPU with a configurable
//! number of Streaming Multiprocessors (SMs), and Domain-Specific
//! Accelerators (DSAs) with a configurable number of Processing Elements
//! (PEs), all sharing memory bandwidth under a power budget. This crate
//! provides:
//!
//! * [`SocSpec`] — the architecture description used across the workspace,
//!   with the paper's area model (Section IV: 16.6 mm² per Zen 3 CPU core
//!   including uncore, 6.5 mm² per Ampere SM) and labels in the paper's
//!   `(c_i, g_j, d_k^l)` notation.
//! * [`OperatingPoint`] / [`gpu_operating_points`] — the A100 DVFS table
//!   (Table III) and the per-SM power model derived from it.
//! * [`powerlaw`] — least-squares power-law fitting (`y = a * x^b`), the
//!   tool the paper uses to interpolate GPU performance, bandwidth, and
//!   power between the SM counts MIG can instantiate.
//!
//! # Example
//!
//! ```
//! use hilp_soc::{DsaSpec, SocSpec};
//!
//! let soc = SocSpec::new(4)
//!     .with_gpu(16)
//!     .with_dsa(DsaSpec::new(16, "HS"))
//!     .with_dsa(DsaSpec::new(16, "LUD"));
//! assert_eq!(soc.label(), "(c4,g16,d2^16)");
//! assert!((soc.area_mm2() - 378.4).abs() < 0.1);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod powerlaw;

mod power;
mod spec;

pub use power::{
    cpu_core_power_w, gpu_operating_points, per_sm_power_w, OperatingPoint, CPU_CORE_POWER_W,
    GPU_IDLE_POWER_W, GPU_POWER_DIVISOR_SMS, REFERENCE_SMS,
};
pub use spec::{Constraints, DsaSpec, SocSpec, CPU_CORE_AREA_MM2, GPU_SM_AREA_MM2};
