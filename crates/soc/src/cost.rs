//! Manufacturing cost and embodied carbon as functions of die area.
//!
//! The paper motivates area as "a key driver of the SoC's manufacturing
//! cost and embodied carbon footprint" (Section I, citing Brunvand et
//! al.'s dark-silicon sustainability argument) but evaluates area only.
//! This module closes that loop with the standard early-stage models so
//! the DSE can draw Pareto fronts in dollars and kgCO₂e instead of mm²:
//!
//! * dies per wafer from die area and wafer diameter (the usual
//!   circle-packing approximation with an edge-loss correction);
//! * die yield from defect density via the negative-binomial model
//!   `Y = (1 + A * D0 / alpha)^-alpha`;
//! * die cost = wafer cost / (dies per wafer * yield);
//! * embodied carbon proportional to *wafer* area consumed per good die
//!   (fabrication emissions scale with processed silicon, not with good
//!   silicon).

/// A manufacturing process node.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessNode {
    /// Display name (e.g. `"N7"`).
    pub name: String,
    /// Wafer cost in USD.
    pub wafer_cost_usd: f64,
    /// Defect density in defects per mm².
    pub defect_density_per_mm2: f64,
    /// Negative-binomial clustering parameter (typically 2-4).
    pub alpha: f64,
    /// Fabrication carbon per mm² of wafer area (kgCO₂e).
    pub carbon_kg_per_mm2: f64,
    /// Wafer diameter in mm.
    pub wafer_diameter_mm: f64,
}

impl ProcessNode {
    /// A 7 nm-class node, matching the paper's Section IV technology
    /// assumption: ~$9.3k wafers, ~0.09 defects/cm², ~1.8 kgCO₂e/cm²
    /// fabrication footprint, 300 mm wafers.
    #[must_use]
    pub fn n7() -> Self {
        ProcessNode {
            name: "N7".to_string(),
            wafer_cost_usd: 9346.0,
            defect_density_per_mm2: 0.0009,
            alpha: 3.0,
            carbon_kg_per_mm2: 0.018,
            wafer_diameter_mm: 300.0,
        }
    }

    /// Gross dies per wafer for a die of `area_mm2`, using the standard
    /// approximation `pi*(d/2)^2/A - pi*d/sqrt(2A)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `area_mm2` is not positive.
    #[must_use]
    pub fn dies_per_wafer(&self, area_mm2: f64) -> f64 {
        debug_assert!(area_mm2 > 0.0);
        let d = self.wafer_diameter_mm;
        let gross = std::f64::consts::PI * (d / 2.0) * (d / 2.0) / area_mm2
            - std::f64::consts::PI * d / (2.0 * area_mm2).sqrt();
        gross.max(0.0)
    }

    /// Die yield in `(0, 1]` under the negative-binomial defect model.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `area_mm2` is not positive.
    #[must_use]
    pub fn yield_fraction(&self, area_mm2: f64) -> f64 {
        debug_assert!(area_mm2 > 0.0);
        (1.0 + area_mm2 * self.defect_density_per_mm2 / self.alpha).powf(-self.alpha)
    }

    /// Cost of one *good* die (USD). Returns infinity for dies too large
    /// to fit a wafer.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `area_mm2` is not positive.
    #[must_use]
    pub fn die_cost_usd(&self, area_mm2: f64) -> f64 {
        let good_dies = self.dies_per_wafer(area_mm2) * self.yield_fraction(area_mm2);
        if good_dies <= 0.0 {
            f64::INFINITY
        } else {
            self.wafer_cost_usd / good_dies
        }
    }

    /// Embodied fabrication carbon attributed to one good die (kgCO₂e):
    /// the wafer's full processed area divided among good dies.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `area_mm2` is not positive.
    #[must_use]
    pub fn embodied_carbon_kg(&self, area_mm2: f64) -> f64 {
        let wafer_area =
            std::f64::consts::PI * (self.wafer_diameter_mm / 2.0) * (self.wafer_diameter_mm / 2.0);
        let good_dies = self.dies_per_wafer(area_mm2) * self.yield_fraction(area_mm2);
        if good_dies <= 0.0 {
            f64::INFINITY
        } else {
            wafer_area * self.carbon_kg_per_mm2 / good_dies
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_decreases_with_area_and_stays_in_range() {
        let node = ProcessNode::n7();
        let mut previous = 1.0;
        for area in [50.0, 100.0, 200.0, 400.0, 800.0] {
            let y = node.yield_fraction(area);
            assert!(y > 0.0 && y <= 1.0);
            assert!(y < previous, "yield must fall with area");
            previous = y;
        }
    }

    #[test]
    fn dies_per_wafer_is_sane_for_known_dies() {
        let node = ProcessNode::n7();
        // A ~100 mm2 mobile die: several hundred per 300 mm wafer.
        let dies = node.dies_per_wafer(100.0);
        assert!(dies > 500.0 && dies < 710.0, "got {dies}");
        // The GA100 at 826 mm2: tens per wafer.
        let big = node.dies_per_wafer(826.0);
        assert!(big > 50.0 && big < 90.0, "got {big}");
    }

    #[test]
    fn cost_grows_superlinearly_with_area() {
        let node = ProcessNode::n7();
        let small = node.die_cost_usd(100.0);
        let big = node.die_cost_usd(400.0);
        assert!(
            big > 4.0 * small,
            "yield loss must make 4x area more than 4x cost: {small} -> {big}"
        );
    }

    #[test]
    fn known_die_costs_are_plausible() {
        let node = ProcessNode::n7();
        // A 432.6 mm2 die (the MA-pick SoC) should land in the hundreds of
        // dollars on N7.
        let cost = node.die_cost_usd(432.6);
        assert!(cost > 50.0 && cost < 500.0, "got {cost}");
    }

    #[test]
    fn carbon_scales_with_area_consumed() {
        let node = ProcessNode::n7();
        let small = node.embodied_carbon_kg(100.0);
        let big = node.embodied_carbon_kg(400.0);
        assert!(big > 3.5 * small);
        // Roughly area x carbon-per-mm2, inflated by yield and edge loss.
        assert!(small > 100.0 * node.carbon_kg_per_mm2);
    }

    #[test]
    fn oversized_dies_cost_infinity() {
        let node = ProcessNode::n7();
        assert!(node.die_cost_usd(80_000.0).is_infinite());
    }
}
