//! Least-squares power-law fitting, `y = a * x^b`.
//!
//! The paper profiles GPUs only at the SM counts Nvidia MIG can instantiate
//! (14, 28, 42, 56, 98) and fills the gaps by fitting a power law with
//! least-squares regression in log space, reporting the coefficient of
//! determination R² for every fit (Tables II and III). This module
//! reimplements that pipeline.

/// Electrical power in watts.
///
/// A documented-unit wrapper: the fitting pipeline handles curves over
/// seconds, gigabytes per second, watts, and joules, all as bare `f64`
/// pairs, and a watts-vs-joules mix-up (power is a rate, energy its
/// integral) silently produces laws that are wrong by a factor of the
/// measurement duration. Sample wrappers make the unit part of the type so
/// [`fit_power_curve`] can only be fed power and [`fit_energy_curve`] only
/// energy.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Watts(pub f64);

impl Watts {
    /// Energy spent sustaining this power for `seconds`.
    #[must_use]
    pub fn for_seconds(self, seconds: f64) -> Joules {
        Joules(self.0 * seconds)
    }
}

/// Energy in joules.
///
/// See [`Watts`] for why the unit is part of the type.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Joules(pub f64);

impl Joules {
    /// Average power over the `seconds` this energy was spent in.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `seconds` is not positive.
    #[must_use]
    pub fn average_over(self, seconds: f64) -> Watts {
        debug_assert!(seconds > 0.0, "averaging requires a positive duration");
        Watts(self.0 / seconds)
    }
}

/// A fitted power law `y = a * x^b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Multiplicative coefficient.
    pub a: f64,
    /// Exponent.
    pub b: f64,
}

impl PowerLaw {
    /// Creates a power law from its coefficients.
    #[must_use]
    pub fn new(a: f64, b: f64) -> Self {
        PowerLaw { a, b }
    }

    /// Evaluates `a * x^b`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `x` is not positive (power laws are only
    /// defined on the positive axis).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        debug_assert!(x > 0.0, "power laws are defined for x > 0");
        self.a * x.powf(self.b)
    }

    /// Relative scaling factor from `x0` to `x`: `(x / x0)^b`.
    ///
    /// This is how the reproduction applies the paper's fits: a quantity
    /// measured at a reference SM count `x0` is scaled to `x` SMs without
    /// depending on the fit's absolute normalization.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when either argument is not positive.
    #[must_use]
    pub fn scale(&self, x0: f64, x: f64) -> f64 {
        debug_assert!(x0 > 0.0 && x > 0.0);
        (x / x0).powf(self.b)
    }
}

/// A power-law fit with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// The fitted law.
    pub law: PowerLaw,
    /// Coefficient of determination of the regression in log space.
    pub r_squared: f64,
}

/// Fits `y = a * x^b` to the points by linear least squares on
/// `ln y = ln a + b * ln x`.
///
/// Returns `None` when fewer than two points are given or any coordinate is
/// non-positive (the log transform is undefined there).
///
/// # Example
///
/// ```
/// use hilp_soc::powerlaw::fit_power_law;
///
/// // Perfect inverse-linear scaling: y = 10 / x.
/// let points = [(1.0, 10.0), (2.0, 5.0), (4.0, 2.5), (8.0, 1.25)];
/// let fit = fit_power_law(&points).unwrap();
/// assert!((fit.law.a - 10.0).abs() < 1e-9);
/// assert!((fit.law.b + 1.0).abs() < 1e-9);
/// assert!((fit.r_squared - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<FitResult> {
    if points.len() < 2 {
        return None;
    }
    if points.iter().any(|&(x, y)| x <= 0.0 || y <= 0.0) {
        return None;
    }
    let n = points.len() as f64;
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let sum_x: f64 = logs.iter().map(|p| p.0).sum();
    let sum_y: f64 = logs.iter().map(|p| p.1).sum();
    let mean_x = sum_x / n;
    let mean_y = sum_y / n;
    let sxx: f64 = logs.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = logs.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();

    let b = if sxx.abs() < 1e-15 { 0.0 } else { sxy / sxx };
    let ln_a = mean_y - b * mean_x;
    let law = PowerLaw::new(ln_a.exp(), b);

    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs.iter().map(|p| (p.1 - (ln_a + b * p.0)).powi(2)).sum();
    let r_squared = if ss_tot.abs() < 1e-15 {
        // All y identical: a constant law fits exactly.
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };

    Some(FitResult { law, r_squared })
}

/// A power law fitted to power samples: evaluates in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCurve {
    /// The underlying unit-free fit.
    pub fit: FitResult,
}

impl PowerCurve {
    /// Evaluates the fitted law at `x`, in watts.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `x` is not positive.
    #[must_use]
    pub fn eval(&self, x: f64) -> Watts {
        Watts(self.fit.law.eval(x))
    }
}

/// A power law fitted to energy samples: evaluates in joules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCurve {
    /// The underlying unit-free fit.
    pub fit: FitResult,
}

impl EnergyCurve {
    /// Evaluates the fitted law at `x`, in joules.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `x` is not positive.
    #[must_use]
    pub fn eval(&self, x: f64) -> Joules {
        Joules(self.fit.law.eval(x))
    }
}

/// Fits `P(x) = a * x^b` watts to typed power samples.
///
/// Same degenerate-input contract as [`fit_power_law`]: `None` for fewer
/// than two points or any non-positive coordinate (a zero or negative power
/// reading is a measurement error, not a fittable sample).
#[must_use]
pub fn fit_power_curve(points: &[(f64, Watts)]) -> Option<PowerCurve> {
    let raw: Vec<(f64, f64)> = points.iter().map(|&(x, Watts(y))| (x, y)).collect();
    fit_power_law(&raw).map(|fit| PowerCurve { fit })
}

/// Fits `E(x) = a * x^b` joules to typed energy samples.
///
/// Same degenerate-input contract as [`fit_power_law`].
#[must_use]
pub fn fit_energy_curve(points: &[(f64, Joules)]) -> Option<EnergyCurve> {
    let raw: Vec<(f64, f64)> = points.iter().map(|&(x, Joules(y))| (x, y)).collect();
    fit_power_law(&raw).map(|fit| EnergyCurve { fit })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_law_is_recovered() {
        let law = PowerLaw::new(3.5, -0.77);
        let points: Vec<(f64, f64)> = [14.0, 28.0, 42.0, 56.0, 98.0]
            .iter()
            .map(|&x| (x, law.eval(x)))
            .collect();
        let fit = fit_power_law(&points).unwrap();
        assert!((fit.law.a - 3.5).abs() < 1e-9);
        assert!((fit.law.b + 0.77).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_data_yields_r_squared_below_one() {
        let points = [(1.0, 10.0), (2.0, 5.5), (4.0, 2.2), (8.0, 1.4)];
        let fit = fit_power_law(&points).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.9, "still a strong trend");
        assert!(fit.law.b < 0.0);
    }

    #[test]
    fn constant_data_fits_a_flat_law() {
        let points = [(1.0, 4.0), (2.0, 4.0), (8.0, 4.0)];
        let fit = fit_power_law(&points).unwrap();
        assert!((fit.law.b).abs() < 1e-12);
        assert!((fit.law.a - 4.0).abs() < 1e-9);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn too_few_or_invalid_points_are_rejected() {
        assert!(fit_power_law(&[(1.0, 2.0)]).is_none());
        assert!(fit_power_law(&[(0.0, 2.0), (1.0, 3.0)]).is_none());
        assert!(fit_power_law(&[(1.0, -2.0), (2.0, 3.0)]).is_none());
        assert!(fit_power_law(&[]).is_none());
    }

    #[test]
    fn scale_is_normalization_independent() {
        let law = PowerLaw::new(123.0, -0.9);
        let direct = law.eval(64.0) / law.eval(14.0);
        assert!((law.scale(14.0, 64.0) - direct).abs() < 1e-12);
    }

    #[test]
    fn identical_x_values_degenerate_to_flat() {
        let points = [(2.0, 3.0), (2.0, 5.0)];
        let fit = fit_power_law(&points).unwrap();
        assert_eq!(fit.law.b, 0.0);
    }

    #[test]
    fn typed_fits_agree_with_the_raw_fit() {
        let raw = [(14.0, 80.0), (28.0, 130.0), (56.0, 210.0)];
        let fit = fit_power_law(&raw).unwrap();
        let watts: Vec<(f64, Watts)> = raw.iter().map(|&(x, y)| (x, Watts(y))).collect();
        let power = fit_power_curve(&watts).unwrap();
        assert_eq!(power.fit, fit);
        assert_eq!(power.eval(42.0), Watts(fit.law.eval(42.0)));
        let joules: Vec<(f64, Joules)> = raw.iter().map(|&(x, y)| (x, Joules(y))).collect();
        let energy = fit_energy_curve(&joules).unwrap();
        assert_eq!(energy.fit, fit);
        assert_eq!(energy.eval(42.0), Joules(fit.law.eval(42.0)));
    }

    #[test]
    fn typed_fits_share_the_degenerate_contract() {
        // Single point, zero power, negative power: all rejected.
        assert!(fit_power_curve(&[(14.0, Watts(80.0))]).is_none());
        assert!(fit_power_curve(&[(14.0, Watts(0.0)), (28.0, Watts(130.0))]).is_none());
        assert!(fit_power_curve(&[(14.0, Watts(-5.0)), (28.0, Watts(130.0))]).is_none());
        assert!(fit_energy_curve(&[(14.0, Joules(80.0))]).is_none());
        assert!(fit_energy_curve(&[(14.0, Joules(0.0)), (28.0, Joules(130.0))]).is_none());
        assert!(fit_energy_curve(&[(14.0, Joules(-5.0)), (28.0, Joules(130.0))]).is_none());
    }

    #[test]
    fn watts_and_joules_convert_both_ways() {
        let energy = Watts(3.5).for_seconds(4.0);
        assert_eq!(energy, Joules(14.0));
        assert_eq!(energy.average_over(4.0), Watts(3.5));
    }
}
