//! Power models: the A100 DVFS table (Table III) and CPU core power.

/// One GPU DVFS operating point: a core clock and the measured whole-GPU
/// power draw under full load at that clock (Table III, "All SMs" column,
/// including the ~30 W static component).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// GPU core clock in MHz.
    pub freq_mhz: u32,
    /// Measured whole-GPU power under load (W).
    pub total_power_w: f64,
}

impl OperatingPoint {
    /// Performance scaling factor of this operating point relative to the
    /// baseline (765 MHz) clock: execution time multiplies by
    /// `765 / freq`.
    ///
    /// The paper observes that some benchmarks are more sensitive to clock
    /// frequency than SM count (Section V, dark silicon); the reproduction
    /// models compute-phase duration as inversely proportional to clock.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        f64::from(BASELINE_FREQ_MHZ) / f64::from(self.freq_mhz)
    }
}

/// Baseline GPU clock used for the Table II measurements (MHz).
pub const BASELINE_FREQ_MHZ: u32 = 765;

/// The SM count the per-SM power figures of Table III are normalized to.
///
/// Table III's per-SM column is the measured whole-GPU power divided by the
/// 128 physical SMs of the GA100 die; the reproduction adopts the same
/// divisor because it is the only one consistent with the paper's
/// dark-silicon anecdote (a 64-SM GPU fits a 50 W budget at 300 MHz but not
/// at 360 MHz).
pub const GPU_POWER_DIVISOR_SMS: f64 = 128.0;

/// SM count of the smallest MIG slice; the per-benchmark GPU execution
/// time and bandwidth columns of Table II are measured at this size and
/// the power-law fits are normalized to it.
pub const REFERENCE_SMS: f64 = 14.0;

/// Idle power of the whole A100 board (W); under the paper's aggressive
/// power-gating assumption idle clusters draw zero, so this constant is
/// informational only.
pub const GPU_IDLE_POWER_W: f64 = 30.0;

/// Per-core power of the profiled AMD EPYC 7543, estimated from its 225 W
/// TDP across 32 cores (Section IV).
pub const CPU_CORE_POWER_W: f64 = 7.0;

/// Table III: measured whole-GPU power per supported core clock.
const GPU_POWER_TABLE: [OperatingPoint; 11] = [
    OperatingPoint {
        freq_mhz: 210,
        total_power_w: 77.2,
    },
    OperatingPoint {
        freq_mhz: 240,
        total_power_w: 83.5,
    },
    OperatingPoint {
        freq_mhz: 300,
        total_power_w: 97.1,
    },
    OperatingPoint {
        freq_mhz: 360,
        total_power_w: 105.1,
    },
    OperatingPoint {
        freq_mhz: 420,
        total_power_w: 119.9,
    },
    OperatingPoint {
        freq_mhz: 480,
        total_power_w: 129.5,
    },
    OperatingPoint {
        freq_mhz: 540,
        total_power_w: 139.8,
    },
    OperatingPoint {
        freq_mhz: 600,
        total_power_w: 153.6,
    },
    OperatingPoint {
        freq_mhz: 660,
        total_power_w: 164.0,
    },
    OperatingPoint {
        freq_mhz: 705,
        total_power_w: 172.9,
    },
    OperatingPoint {
        freq_mhz: 765,
        total_power_w: 185.4,
    },
];

/// The GPU DVFS operating points of Table III, slowest first.
#[must_use]
pub fn gpu_operating_points() -> &'static [OperatingPoint] {
    &GPU_POWER_TABLE
}

/// Power drawn by `sms` active SMs at the given operating point.
///
/// # Example
///
/// ```
/// use hilp_soc::{gpu_operating_points, per_sm_power_w};
///
/// let fastest = gpu_operating_points().last().unwrap();
/// // A 64-SM GPU at 765 MHz draws about 92.7 W.
/// assert!((per_sm_power_w(*fastest) * 64.0 - 92.7).abs() < 0.1);
/// ```
#[must_use]
pub fn per_sm_power_w(op: OperatingPoint) -> f64 {
    op.total_power_w / GPU_POWER_DIVISOR_SMS
}

/// Per-core CPU power (W); see [`CPU_CORE_POWER_W`].
#[must_use]
pub fn cpu_core_power_w() -> f64 {
    CPU_CORE_POWER_W
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_monotone() {
        let ops = gpu_operating_points();
        assert_eq!(ops.len(), 11);
        for pair in ops.windows(2) {
            assert!(pair[0].freq_mhz < pair[1].freq_mhz);
            assert!(pair[0].total_power_w < pair[1].total_power_w);
        }
    }

    #[test]
    fn per_sm_power_matches_paper_rounding() {
        // Table III reports 0.6 W/SM at 210 MHz and 1.4 W/SM at 765 MHz.
        let ops = gpu_operating_points();
        assert!((per_sm_power_w(ops[0]) - 0.6).abs() < 0.05);
        assert!((per_sm_power_w(ops[10]) - 1.4).abs() < 0.05);
    }

    #[test]
    fn dark_silicon_anecdote_holds() {
        // Section V: under a 50 W budget a 64-SM GPU is capped at 300 MHz.
        let ops = gpu_operating_points();
        let at = |mhz: u32| {
            ops.iter()
                .find(|o| o.freq_mhz == mhz)
                .copied()
                .expect("frequency in table")
        };
        assert!(per_sm_power_w(at(300)) * 64.0 <= 50.0);
        assert!(per_sm_power_w(at(360)) * 64.0 > 50.0);
        // And a 32-SM GPU can use the full range.
        assert!(per_sm_power_w(at(765)) * 32.0 <= 50.0);
    }

    #[test]
    fn sixteen_sm_power_range_is_plausible() {
        // Section VI: "our smallest GPU (16 SMs) consumes from 10.4 W to
        // 24.6 W depending on the selected operating point". Our model
        // (total / 128) gives 9.7 - 23.2 W: same range within a watt and a
        // half, which the paper's rounding of per-SM power explains.
        let ops = gpu_operating_points();
        let lo = per_sm_power_w(ops[0]) * 16.0;
        let hi = per_sm_power_w(ops[10]) * 16.0;
        assert!((lo - 10.4).abs() < 1.5);
        assert!((hi - 24.6).abs() < 1.5);
    }

    #[test]
    fn slowdown_is_relative_to_baseline() {
        let ops = gpu_operating_points();
        assert_eq!(ops[10].slowdown(), 1.0);
        assert!((ops[0].slowdown() - 765.0 / 210.0).abs() < 1e-12);
    }
}
