//! SoC specifications: clusters, areas, labels, and global constraints.

use serde::{Deserialize, Serialize};

/// Die area per CPU core (mm²), derived in Section IV from the 64-core AMD
/// EPYC 7763's 1,064 mm² total die area including the I/O die (uncore).
pub const CPU_CORE_AREA_MM2: f64 = 16.6;

/// Die area per GPU SM (mm²), derived from the Nvidia GA100's 826 mm² and
/// 128 SMs.
pub const GPU_SM_AREA_MM2: f64 = 6.5;

/// A DSA: `pes` processing elements accelerating the compute phase of one
/// specific benchmark.
///
/// The paper models DSAs at a configurable *efficiency advantage* over the
/// GPU (4x by default): a DSA with `n` PEs delivers the performance and
/// bandwidth of a GPU slice with `advantage * n` SMs, while occupying the
/// area and drawing the power of only `n` SMs. This is the unique reading
/// consistent with the paper's area arithmetic — e.g. the
/// `(c4,g16,d2^16)` SoC is reported at 378.4 mm², which requires DSA PEs at
/// full SM area (4 * 16.6 + 16 * 6.5 + 32 * 6.5 = 378.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsaSpec {
    /// Number of processing elements.
    pub pes: u32,
    /// Name of the benchmark whose compute phase this DSA accelerates.
    pub accelerates: String,
    /// Efficiency advantage over the GPU (the paper explores 2x, 4x, 8x).
    pub advantage: f64,
}

impl DsaSpec {
    /// A DSA with the paper's default 4x efficiency advantage.
    #[must_use]
    pub fn new(pes: u32, accelerates: impl Into<String>) -> Self {
        DsaSpec {
            pes,
            accelerates: accelerates.into(),
            advantage: 4.0,
        }
    }

    /// Overrides the efficiency advantage, builder style.
    #[must_use]
    pub fn with_advantage(mut self, advantage: f64) -> Self {
        self.advantage = advantage;
        self
    }

    /// The SM count of the GPU slice this DSA performs like.
    #[must_use]
    pub fn equivalent_sms(&self) -> f64 {
        self.advantage * f64::from(self.pes)
    }

    /// Die area of this DSA (mm²).
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        f64::from(self.pes) * GPU_SM_AREA_MM2
    }
}

/// A heterogeneous SoC: CPU cores, an optional GPU, and DSAs
/// (the architecture template of Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocSpec {
    /// Number of CPU cores. Each core is modeled as its own core cluster so
    /// independent sequential phases can run in parallel (Section III-C).
    pub cpu_cores: u32,
    /// GPU SM count; `None` means no GPU.
    pub gpu_sms: Option<u32>,
    /// The SoC's DSAs.
    pub dsas: Vec<DsaSpec>,
}

impl SocSpec {
    /// An SoC with the given number of CPU cores and no accelerators.
    ///
    /// # Panics
    ///
    /// Panics when `cpu_cores` is zero: the paper's minimum configuration
    /// is a single CPU core (sequential phases have nowhere else to run).
    #[must_use]
    pub fn new(cpu_cores: u32) -> Self {
        assert!(cpu_cores >= 1, "an SoC needs at least one CPU core");
        SocSpec {
            cpu_cores,
            gpu_sms: None,
            dsas: Vec::new(),
        }
    }

    /// Adds a GPU with the given SM count, builder style.
    #[must_use]
    pub fn with_gpu(mut self, sms: u32) -> Self {
        self.gpu_sms = if sms == 0 { None } else { Some(sms) };
        self
    }

    /// Adds a DSA, builder style.
    #[must_use]
    pub fn with_dsa(mut self, dsa: DsaSpec) -> Self {
        self.dsas.push(dsa);
        self
    }

    /// Total die area (mm²) under the Section IV area model.
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let cpu = f64::from(self.cpu_cores) * CPU_CORE_AREA_MM2;
        let gpu = f64::from(self.gpu_sms.unwrap_or(0)) * GPU_SM_AREA_MM2;
        let dsa: f64 = self.dsas.iter().map(DsaSpec::area_mm2).sum();
        cpu + gpu + dsa
    }

    /// Area devoted to accelerators (GPU + DSAs), mm².
    #[must_use]
    pub fn accelerator_area_mm2(&self) -> f64 {
        self.area_mm2() - f64::from(self.cpu_cores) * CPU_CORE_AREA_MM2
    }

    /// Fraction of accelerator area devoted to the GPU, in `[0, 1]`;
    /// returns `None` for SoCs without accelerators. Used for the paper's
    /// Figure 7 color coding (green > 75% GPU, blue > 75% DSA).
    #[must_use]
    pub fn gpu_area_fraction(&self) -> Option<f64> {
        let accel = self.accelerator_area_mm2();
        if accel <= 0.0 {
            return None;
        }
        Some(f64::from(self.gpu_sms.unwrap_or(0)) * GPU_SM_AREA_MM2 / accel)
    }

    /// The paper's `(c_i, g_j, d_k^l)` label. All DSAs in a paper SoC share
    /// one PE count; for heterogeneous-PE SoCs the superscript lists the
    /// distinct counts.
    #[must_use]
    pub fn label(&self) -> String {
        let c = self.cpu_cores;
        let g = self.gpu_sms.unwrap_or(0);
        let k = self.dsas.len();
        if k == 0 {
            return format!("(c{c},g{g},d0^0)");
        }
        let mut pes: Vec<u32> = self.dsas.iter().map(|d| d.pes).collect();
        pes.sort_unstable();
        pes.dedup();
        let sup = pes
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        format!("(c{c},g{g},d{k}^{sup})")
    }

    /// Number of core clusters this SoC maps to: one per CPU core, one for
    /// the GPU (if present), one per DSA.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.cpu_cores as usize + usize::from(self.gpu_sms.is_some()) + self.dsas.len()
    }
}

/// Global constraints on a workload evaluation: the paper's `p_max` and
/// `b_max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Constraints {
    /// SoC power budget in watts, if constrained.
    pub power_w: Option<f64>,
    /// Memory bandwidth budget in GB/s, if constrained.
    pub bandwidth_gbps: Option<f64>,
}

impl Constraints {
    /// No constraints at all.
    #[must_use]
    pub fn unconstrained() -> Self {
        Constraints::default()
    }

    /// The paper's default evaluation setup: 600 W budget and 800 GB/s of
    /// HBM3 bandwidth (Section IV).
    #[must_use]
    pub fn paper_default() -> Self {
        Constraints {
            power_w: Some(600.0),
            bandwidth_gbps: Some(800.0),
        }
    }

    /// Sets the power budget, builder style.
    #[must_use]
    pub fn with_power(mut self, watts: f64) -> Self {
        self.power_w = Some(watts);
        self
    }

    /// Sets the bandwidth budget, builder style.
    #[must_use]
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.bandwidth_gbps = Some(gbps);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_area_figures_are_reproduced() {
        // Section VI quotes these areas exactly.
        let ma_best = SocSpec::new(1).with_gpu(64);
        assert!((ma_best.area_mm2() - 432.6).abs() < 0.05);

        let gables_best = SocSpec::new(4)
            .with_gpu(4)
            .with_dsa(DsaSpec::new(4, "LUD"))
            .with_dsa(DsaSpec::new(4, "HS"))
            .with_dsa(DsaSpec::new(4, "LMD"));
        assert!((gables_best.area_mm2() - 170.4).abs() < 0.05);

        let hilp_best = SocSpec::new(4)
            .with_gpu(16)
            .with_dsa(DsaSpec::new(16, "LUD"))
            .with_dsa(DsaSpec::new(16, "HS"));
        assert!((hilp_best.area_mm2() - 378.4).abs() < 0.05);

        let gpu_only = SocSpec::new(4).with_gpu(64);
        assert!((gpu_only.area_mm2() - 482.4).abs() < 0.05);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(SocSpec::new(1).label(), "(c1,g0,d0^0)");
        assert_eq!(SocSpec::new(1).with_gpu(64).label(), "(c1,g64,d0^0)");
        let mixed = SocSpec::new(4)
            .with_gpu(16)
            .with_dsa(DsaSpec::new(16, "LUD"))
            .with_dsa(DsaSpec::new(16, "HS"));
        assert_eq!(mixed.label(), "(c4,g16,d2^16)");
    }

    #[test]
    fn gpu_area_fraction_classifies_accelerator_mixes() {
        let gpu_heavy = SocSpec::new(1).with_gpu(64).with_dsa(DsaSpec::new(1, "HS"));
        assert!(gpu_heavy.gpu_area_fraction().unwrap() > 0.75);

        let dsa_heavy = SocSpec::new(1).with_gpu(4).with_dsa(DsaSpec::new(64, "HS"));
        assert!(dsa_heavy.gpu_area_fraction().unwrap() < 0.25);

        let none = SocSpec::new(2);
        assert!(none.gpu_area_fraction().is_none());
    }

    #[test]
    fn dsa_equivalent_sms_scale_with_advantage() {
        let dsa = DsaSpec::new(16, "HS");
        assert_eq!(dsa.equivalent_sms(), 64.0);
        let dsa8 = dsa.with_advantage(8.0);
        assert_eq!(dsa8.equivalent_sms(), 128.0);
    }

    #[test]
    fn zero_sm_gpu_collapses_to_none() {
        let soc = SocSpec::new(1).with_gpu(0);
        assert_eq!(soc.gpu_sms, None);
        assert_eq!(soc.num_clusters(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one CPU core")]
    fn zero_cpu_cores_panics() {
        let _ = SocSpec::new(0);
    }

    #[test]
    fn cluster_count_covers_all_units() {
        let soc = SocSpec::new(4)
            .with_gpu(16)
            .with_dsa(DsaSpec::new(1, "HS"))
            .with_dsa(DsaSpec::new(1, "LUD"));
        assert_eq!(soc.num_clusters(), 7);
    }

    #[test]
    fn constraints_builders_compose() {
        let c = Constraints::unconstrained()
            .with_power(50.0)
            .with_bandwidth(100.0);
        assert_eq!(c.power_w, Some(50.0));
        assert_eq!(c.bandwidth_gbps, Some(100.0));
        let d = Constraints::paper_default();
        assert_eq!(d.power_w, Some(600.0));
        assert_eq!(d.bandwidth_gbps, Some(800.0));
    }

    #[test]
    fn heterogeneous_pe_labels_list_distinct_counts() {
        let soc = SocSpec::new(2)
            .with_dsa(DsaSpec::new(4, "A"))
            .with_dsa(DsaSpec::new(16, "B"));
        assert_eq!(soc.label(), "(c2,g0,d2^4,16)");
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn specs_implement_serde_traits() {
        // The types derive Serialize/Deserialize for downstream format
        // crates; assert the impls exist and are object-safe to call.
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<SocSpec>();
        assert_serde::<DsaSpec>();
        assert_serde::<Constraints>();
    }
}
