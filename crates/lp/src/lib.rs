//! A dense, two-phase primal simplex solver for linear programs.
//!
//! This crate is one of the solver substrates of the HILP reproduction. The
//! paper solves its job-shop scheduling formulation with an off-the-shelf ILP
//! solver (OR-Tools via MiniZinc); since no solver crate is available in this
//! environment, we implement the stack from scratch. `hilp-lp` provides the
//! linear-programming relaxation engine used by `hilp-milp`'s
//! branch-and-bound search.
//!
//! The solver targets the small, dense models produced by the disjunctive
//! job-shop encodings used for cross-validation (tens of variables, tens of
//! constraints). It deliberately favours clarity and numerical robustness
//! (Bland's anti-cycling rule, explicit tolerance handling) over large-scale
//! performance.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y <= 4`, `x + 3y <= 6`, `x, y >= 0`:
//!
//! ```
//! use hilp_lp::{LinearProgram, Objective, Relation, Status};
//!
//! # fn main() -> Result<(), hilp_lp::LpError> {
//! let mut lp = LinearProgram::new(Objective::Maximize);
//! let x = lp.add_variable(3.0);
//! let y = lp.add_variable(2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0)?;
//! lp.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 6.0)?;
//! let solution = lp.solve()?;
//! assert_eq!(solution.status(), Status::Optimal);
//! assert!((solution.objective_value() - 12.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod problem;
mod simplex;
mod solution;

pub use error::LpError;
pub use problem::{LinearProgram, Objective, Relation, RowSnapshot, VariableId};
pub use solution::{Solution, Status};

/// Absolute tolerance used for feasibility and optimality tests.
pub const TOLERANCE: f64 = 1e-9;
