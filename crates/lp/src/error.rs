use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A constraint or objective referenced a variable that does not belong
    /// to this program.
    UnknownVariable {
        /// Index of the offending variable.
        index: usize,
        /// Number of variables currently in the program.
        num_variables: usize,
    },
    /// A coefficient, bound, or right-hand side was NaN or infinite.
    NonFiniteValue {
        /// Human-readable location of the offending value.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A variable lower bound exceeded its upper bound.
    InvalidBounds {
        /// Index of the offending variable.
        index: usize,
        /// The lower bound.
        lower: f64,
        /// The upper bound.
        upper: f64,
    },
    /// The simplex iteration limit was exhausted before convergence.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The attached [`hilp_budget::Budget`] expired (deadline passed or
    /// the solve was cancelled) before the simplex converged.
    BudgetExhausted {
        /// Which budget dimension tripped.
        kind: hilp_budget::BudgetKind,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable {
                index,
                num_variables,
            } => write!(
                f,
                "variable index {index} out of range for program with {num_variables} variables"
            ),
            LpError::NonFiniteValue { context, value } => {
                write!(f, "non-finite value {value} in {context}")
            }
            LpError::InvalidBounds {
                index,
                lower,
                upper,
            } => write!(
                f,
                "variable {index} has lower bound {lower} greater than upper bound {upper}"
            ),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exhausted")
            }
            LpError::BudgetExhausted { kind } => {
                write!(f, "simplex stopped: solve budget exhausted ({kind})")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = LpError::UnknownVariable {
            index: 7,
            num_variables: 3,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('3'));

        let err = LpError::NonFiniteValue {
            context: "objective",
            value: f64::NAN,
        };
        assert!(err.to_string().contains("objective"));

        let err = LpError::InvalidBounds {
            index: 0,
            lower: 2.0,
            upper: 1.0,
        };
        assert!(err.to_string().contains("lower bound"));

        let err = LpError::IterationLimit { limit: 10 };
        assert!(err.to_string().contains("10"));
    }
}
