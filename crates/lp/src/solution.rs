use crate::problem::VariableId;

/// Termination status of a linear-programming solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Result of solving a [`crate::LinearProgram`].
///
/// Variable values and the objective value are only meaningful when
/// [`Solution::status`] is [`Status::Optimal`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    status: Status,
    values: Vec<f64>,
    objective_value: f64,
    pivots: u64,
}

impl Solution {
    pub(crate) fn new(status: Status, values: Vec<f64>, objective_value: f64) -> Self {
        Solution {
            status,
            values,
            objective_value,
            pivots: 0,
        }
    }

    /// Attaches the number of simplex pivots the solve performed.
    pub(crate) fn with_pivots(mut self, pivots: u64) -> Self {
        self.pivots = pivots;
        self
    }

    /// Simplex pivots performed across both phases of the solve. Purely
    /// informational (telemetry); deterministic for a given program.
    #[must_use]
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Termination status of the solve.
    #[must_use]
    pub fn status(&self) -> Status {
        self.status
    }

    /// Returns `true` when an optimal solution was found.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }

    /// Value of a variable in the optimal solution.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved program.
    #[must_use]
    pub fn value(&self, var: VariableId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VariableId::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value of the optimal solution.
    #[must_use]
    pub fn objective_value(&self) -> f64 {
        self.objective_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let sol = Solution::new(Status::Optimal, vec![1.0, 2.0], 5.0);
        assert_eq!(sol.pivots(), 0);
        let sol = sol.with_pivots(5);
        assert_eq!(sol.pivots(), 5);
        assert!(sol.is_optimal());
        assert_eq!(sol.values(), &[1.0, 2.0]);
        assert_eq!(sol.objective_value(), 5.0);
        assert_eq!(sol.value(VariableId(1)), 2.0);
    }

    #[test]
    fn non_optimal_statuses_are_reported() {
        let sol = Solution::new(Status::Infeasible, vec![], 0.0);
        assert!(!sol.is_optimal());
        assert_eq!(sol.status(), Status::Infeasible);
    }
}
