//! Dense two-phase primal simplex kernel.
//!
//! The kernel operates on a full tableau. Variables are shifted by their
//! lower bound so every structural variable is nonnegative; finite upper
//! bounds become explicit rows. Phase 1 minimizes the sum of artificial
//! variables; phase 2 optimizes the user objective. Dantzig's rule is used
//! until a pivot-count threshold, after which Bland's rule guarantees
//! termination.

use crate::error::LpError;
use crate::problem::{LinearProgram, Objective, Relation};
use crate::solution::{Solution, Status};
use crate::TOLERANCE;
use hilp_budget::Budget;

/// How many pivots between cooperative deadline / cancellation checks.
/// The global pivot count starts at zero, so an already-expired budget
/// stops the solve before any pivoting happens.
const BUDGET_CHECK_STRIDE: u64 = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColumnKind {
    Structural,
    Slack,
    Artificial,
}

struct Tableau {
    /// Row-major matrix of `rows x (cols + 1)`; the final column is the RHS.
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    basis: Vec<usize>,
    kind: Vec<ColumnKind>,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * (self.cols + 1) + c]
    }

    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * (self.cols + 1) + c]
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.cols + 1;
        let pivot_value = self.at(row, col);
        debug_assert!(pivot_value.abs() > TOLERANCE);
        let inv = 1.0 / pivot_value;
        for c in 0..width {
            self.data[row * width + c] *= inv;
        }
        // Re-normalize the pivot element exactly.
        self.data[row * width + col] = 1.0;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor.abs() <= TOLERANCE {
                self.data[r * width + col] = 0.0;
                continue;
            }
            for c in 0..width {
                let delta = factor * self.data[row * width + c];
                self.data[r * width + c] -= delta;
            }
            self.data[r * width + col] = 0.0;
        }
        self.basis[row] = col;
    }
}

/// Outcome of one phase of simplex iterations on an objective vector.
enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Runs simplex iterations minimizing `objective` (a dense cost vector over
/// tableau columns) with the current basis. `blocked` columns never enter.
#[allow(clippy::needless_range_loop)] // index drives several structures
fn run_phase(
    tableau: &mut Tableau,
    objective: &[f64],
    blocked: &[bool],
    iteration_limit: usize,
    budget: &Budget,
    pivots: &mut u64,
) -> Result<PhaseOutcome, LpError> {
    // Reduced-cost row: z_j = c_j - c_B^T * column_j.
    let m = tableau.rows;
    let mut reduced: Vec<f64> = objective.to_vec();
    let mut obj_rhs = 0.0;
    for r in 0..m {
        let cb = objective[tableau.basis[r]];
        if cb != 0.0 {
            for c in 0..tableau.cols {
                reduced[c] -= cb * tableau.at(r, c);
            }
            obj_rhs -= cb * tableau.rhs(r);
        }
    }
    let _ = obj_rhs;

    // Both the pivot cap and the Bland threshold count *global* pivots:
    // the cap spans phase 1, the artificial drive-out, and phase 2, so a
    // near-cycling phase 1 cannot hand phase 2 a fresh budget.
    let limit = u64::try_from(iteration_limit).unwrap_or(u64::MAX);
    let bland_threshold = limit / 2;
    loop {
        if (*pivots).is_multiple_of(BUDGET_CHECK_STRIDE) {
            if let Err(kind) = budget.check() {
                return Err(LpError::BudgetExhausted { kind });
            }
        }
        // Entering column.
        let use_bland = *pivots >= bland_threshold;
        let mut entering: Option<usize> = None;
        let mut best = -TOLERANCE;
        for c in 0..tableau.cols {
            if blocked[c] {
                continue;
            }
            let rc = reduced[c];
            if rc < best {
                entering = Some(c);
                if use_bland {
                    break;
                }
                best = rc;
            }
        }
        let Some(col) = entering else {
            return Ok(PhaseOutcome::Optimal);
        };
        // A pivot is needed: spend one unit of the global cap.
        if *pivots >= limit {
            return Err(LpError::IterationLimit {
                limit: iteration_limit,
            });
        }

        // Leaving row: minimum ratio test, ties broken by smallest basis
        // index (lexicographic tie-break supports Bland's rule).
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m {
            let a = tableau.at(r, col);
            if a > TOLERANCE {
                let ratio = tableau.rhs(r) / a;
                let better = ratio < best_ratio - TOLERANCE
                    || (ratio < best_ratio + TOLERANCE
                        && leaving.is_some_and(|lr| tableau.basis[r] < tableau.basis[lr]));
                if better {
                    best_ratio = ratio;
                    leaving = Some(r);
                }
            }
        }
        let Some(row) = leaving else {
            return Ok(PhaseOutcome::Unbounded);
        };

        tableau.pivot(row, col);
        *pivots += 1;
        // Update reduced costs by the same elimination.
        let factor = reduced[col];
        if factor.abs() > TOLERANCE {
            for c in 0..tableau.cols {
                reduced[c] -= factor * tableau.at(row, c);
            }
        }
        reduced[col] = 0.0;
    }
}

pub(crate) fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    let n = lp.num_variables();
    let lower = lp.lower_bounds();
    let upper = lp.upper_bounds();
    let mut pivots = 0u64;

    // Shifted rows: structural variable j is represented as y_j = x_j - l_j.
    // Each row becomes sum(a_ij * y_j) rel (rhs - sum(a_ij * l_j)); finite
    // upper bounds add rows y_j <= u_j - l_j.
    struct NormRow {
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    }
    let mut norm_rows: Vec<NormRow> = Vec::with_capacity(lp.num_constraints());
    for row in lp.rows() {
        let mut rhs = row.rhs;
        for &(j, a) in &row.coeffs {
            rhs -= a * lower[j];
        }
        norm_rows.push(NormRow {
            coeffs: row.coeffs.clone(),
            relation: row.relation,
            rhs,
        });
    }
    for j in 0..n {
        if upper[j].is_finite() {
            let span = upper[j] - lower[j];
            norm_rows.push(NormRow {
                coeffs: vec![(j, 1.0)],
                relation: Relation::Le,
                rhs: span,
            });
        }
    }

    // Normalize RHS signs, then allocate slack / artificial columns.
    for row in &mut norm_rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for coeff in &mut row.coeffs {
                coeff.1 = -coeff.1;
            }
            row.relation = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    let m = norm_rows.len();
    let mut kind = vec![ColumnKind::Structural; n];
    let mut columns_for_row: Vec<(Option<usize>, Option<usize>)> = Vec::with_capacity(m);
    for row in &norm_rows {
        let (slack, artificial) = match row.relation {
            Relation::Le => {
                kind.push(ColumnKind::Slack);
                (Some(kind.len() - 1), None)
            }
            Relation::Ge => {
                kind.push(ColumnKind::Slack);
                let surplus = kind.len() - 1;
                kind.push(ColumnKind::Artificial);
                (Some(surplus), Some(kind.len() - 1))
            }
            Relation::Eq => {
                kind.push(ColumnKind::Artificial);
                (None, Some(kind.len() - 1))
            }
        };
        columns_for_row.push((slack, artificial));
    }
    let total_cols = kind.len();

    let mut tableau = Tableau {
        data: vec![0.0; m * (total_cols + 1)],
        rows: m,
        cols: total_cols,
        basis: vec![0; m],
        kind: kind.clone(),
    };
    for (r, row) in norm_rows.iter().enumerate() {
        for &(j, a) in &row.coeffs {
            *tableau.at_mut(r, j) += a;
        }
        *tableau.at_mut(r, total_cols) = row.rhs;
        let (slack, artificial) = columns_for_row[r];
        match row.relation {
            Relation::Le => {
                let s = slack.expect("Le rows have slacks");
                *tableau.at_mut(r, s) = 1.0;
                tableau.basis[r] = s;
            }
            Relation::Ge => {
                let s = slack.expect("Ge rows have surpluses");
                let a = artificial.expect("Ge rows have artificials");
                *tableau.at_mut(r, s) = -1.0;
                *tableau.at_mut(r, a) = 1.0;
                tableau.basis[r] = a;
            }
            Relation::Eq => {
                let a = artificial.expect("Eq rows have artificials");
                *tableau.at_mut(r, a) = 1.0;
                tableau.basis[r] = a;
            }
        }
    }

    let has_artificials = kind.contains(&ColumnKind::Artificial);
    let no_block = vec![false; total_cols];
    if has_artificials {
        let phase1_costs: Vec<f64> = kind
            .iter()
            .map(|k| {
                if *k == ColumnKind::Artificial {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        match run_phase(
            &mut tableau,
            &phase1_costs,
            &no_block,
            lp.iteration_limit(),
            lp.budget(),
            &mut pivots,
        )? {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => unreachable!("phase-1 objective is bounded below by zero"),
        }
        let infeasibility: f64 = (0..m)
            .filter(|&r| tableau.kind[tableau.basis[r]] == ColumnKind::Artificial)
            .map(|r| tableau.rhs(r))
            .sum();
        if infeasibility > 1e-7 {
            return Ok(Solution::new(Status::Infeasible, vec![0.0; n], 0.0).with_pivots(pivots));
        }
        // Drive remaining zero-valued artificials out of the basis where
        // possible; redundant rows keep them basic at zero.
        for r in 0..m {
            if tableau.kind[tableau.basis[r]] == ColumnKind::Artificial {
                let col = (0..total_cols).find(|&c| {
                    tableau.kind[c] != ColumnKind::Artificial && tableau.at(r, c).abs() > 1e-7
                });
                if let Some(c) = col {
                    tableau.pivot(r, c);
                    pivots += 1;
                }
            }
        }
    }

    // Phase 2: minimize the user objective (negated for maximization).
    let sign = match lp.objective() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    let mut phase2_costs = vec![0.0; total_cols];
    for (j, &c) in lp.costs().iter().enumerate() {
        phase2_costs[j] = sign * c;
    }
    let blocked: Vec<bool> = kind.iter().map(|k| *k == ColumnKind::Artificial).collect();
    match run_phase(
        &mut tableau,
        &phase2_costs,
        &blocked,
        lp.iteration_limit(),
        lp.budget(),
        &mut pivots,
    )? {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => {
            return Ok(Solution::new(Status::Unbounded, vec![0.0; n], 0.0).with_pivots(pivots));
        }
    }

    let mut x = lower.to_vec();
    for r in 0..m {
        let b = tableau.basis[r];
        if b < n {
            x[b] = lower[b] + tableau.rhs(r).max(0.0);
        }
    }
    let objective_value: f64 = lp.costs().iter().zip(&x).map(|(c, v)| c * v).sum();
    Ok(Solution::new(Status::Optimal, x, objective_value).with_pivots(pivots))
}

#[cfg(test)]
mod tests {
    use crate::{LinearProgram, Objective, Relation, Status};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn maximization_with_two_constraints() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 6.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.objective_value(), 12.0);
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn minimization_with_ge_constraints_uses_phase_one() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(2.0);
        let y = lp.add_variable(3.0);
        lp.set_bounds(x, 2.0, f64::INFINITY).unwrap();
        lp.set_bounds(y, 3.0, f64::INFINITY).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        // Push as much mass as possible onto the cheaper variable.
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
        assert_close(sol.objective_value(), 23.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, 3x + 2y = 8  => x = 2, y = 1.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Eq, 8.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(0.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Unbounded);
    }

    #[test]
    fn upper_bounds_are_respected() {
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(1.0);
        lp.set_bounds(x, 0.0, 7.5).unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.value(x), 7.5);
    }

    #[test]
    fn shifted_lower_bounds_are_respected() {
        // min x + y with x in [2, 5], y in [-3, 10], x + y >= 1.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.set_bounds(x, 2.0, 5.0).unwrap();
        lp.set_bounds(y, -3.0, 10.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.objective_value(), 1.0);
        assert!(sol.value(x) >= 2.0 - 1e-9);
        assert!(sol.value(y) >= -3.0 - 1e-9);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -2 with min x means y must carry the slack: y >= x + 2.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(0.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, -2.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; Bland's fallback must terminate.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x1 = lp.add_variable(10.0);
        let x2 = lp.add_variable(-57.0);
        let x3 = lp.add_variable(-9.0);
        let x4 = lp.add_variable(-24.0);
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        lp.add_constraint(vec![(x1, 1.0)], Relation::Le, 1.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.objective_value(), 1.0);
    }

    #[test]
    fn beale_cycling_example_terminates_at_the_known_optimum() {
        // Beale (1955): pure Dantzig pivoting cycles forever on this
        // degenerate LP. The Bland fallback must break any cycle; the
        // optimum is -0.05 at x = (0.04, 0, 1, 0).
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x1 = lp.add_variable(-0.75);
        let x2 = lp.add_variable(150.0);
        let x3 = lp.add_variable(-0.02);
        let x4 = lp.add_variable(6.0);
        lp.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        lp.add_constraint(vec![(x3, 1.0)], Relation::Le, 1.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.objective_value(), -0.05);
        assert_close(sol.value(x1), 0.04);
        assert_close(sol.value(x3), 1.0);
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        // Duplicate equality rows leave an artificial basic at zero.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 3.0)
            .unwrap();
        lp.add_constraint(vec![(x, 2.0), (y, 2.0)], Relation::Eq, 6.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.objective_value(), 3.0);
    }

    #[test]
    fn empty_objective_with_feasible_region_is_optimal() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(0.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 5.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_close(sol.objective_value(), 0.0);
    }
}

#[cfg(test)]
mod limit_tests {
    use crate::{LinearProgram, LpError, Objective, Relation};
    use hilp_budget::{Budget, BudgetKind, CancelToken};
    use std::time::Duration;

    /// A small LP that needs phase-1 work (Ge row) and phase-2 pivots.
    fn two_phase_instance() -> LinearProgram {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(2.0);
        let y = lp.add_variable(3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 4.0)
            .unwrap();
        lp
    }

    #[test]
    fn pivot_cap_is_global_across_phases() {
        // The cap counts pivots from both phases combined: re-solving
        // with one pivot less than the full solve used must trip the
        // limit even though each phase alone would fit a per-phase cap.
        let total = two_phase_instance().solve().unwrap().pivots();
        assert!(total >= 2, "instance should need at least two pivots");
        let mut capped = two_phase_instance();
        #[allow(clippy::cast_possible_truncation)]
        capped.set_iteration_limit(total as usize - 1);
        assert!(matches!(
            capped.solve(),
            Err(LpError::IterationLimit { .. })
        ));
    }

    #[test]
    fn cancelled_budget_stops_the_solve() {
        let token = CancelToken::new();
        token.cancel();
        let mut lp = two_phase_instance();
        lp.set_budget(Budget::unlimited().with_cancel(token));
        assert!(matches!(
            lp.solve(),
            Err(LpError::BudgetExhausted {
                kind: BudgetKind::Cancelled
            })
        ));
    }

    #[test]
    fn expired_deadline_stops_the_solve() {
        let mut lp = two_phase_instance();
        lp.set_budget(Budget::deadline(Duration::ZERO));
        assert!(matches!(
            lp.solve(),
            Err(LpError::BudgetExhausted {
                kind: BudgetKind::Deadline
            })
        ));
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let plain = two_phase_instance().solve().unwrap();
        let mut budgeted = two_phase_instance();
        budgeted.set_budget(Budget::unlimited());
        assert_eq!(budgeted.solve().unwrap(), plain);
    }

    #[test]
    fn iteration_limit_is_reported_as_an_error() {
        // A non-trivial LP with the pivot budget set to zero must fail
        // loudly instead of returning a wrong answer.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        lp.set_iteration_limit(0);
        assert!(matches!(
            lp.solve(),
            Err(LpError::IterationLimit { limit: 0 })
        ));
    }

    #[test]
    fn set_cost_changes_the_optimum() {
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.set_bounds(x, 0.0, 3.0).unwrap();
        lp.set_bounds(y, 0.0, 3.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 3.0)
            .unwrap();
        lp.set_cost(y, 5.0).unwrap();
        let sol = lp.solve().unwrap();
        assert!((sol.value(y) - 3.0).abs() < 1e-9, "y now dominates");
        assert!((sol.objective_value() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn equalities_with_negative_rhs_are_normalized() {
        // -x = -2 must behave like x = 2.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Eq, -2.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
    }
}
