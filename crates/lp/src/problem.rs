use crate::error::LpError;
use crate::simplex;
use crate::solution::Solution;
use hilp_budget::Budget;

/// Optimization direction of a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Left-hand side must be less than or equal to the right-hand side.
    Le,
    /// Left-hand side must be greater than or equal to the right-hand side.
    Ge,
    /// Left-hand side must equal the right-hand side.
    Eq,
}

/// Opaque handle to a decision variable of a [`LinearProgram`].
///
/// Handles are only meaningful for the program that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariableId(pub(crate) usize);

impl VariableId {
    /// Returns the dense column index of this variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Creates a handle from a dense column index.
    ///
    /// The index must have been obtained from [`VariableId::index`] on a
    /// handle of the same program; using a foreign index yields builder
    /// errors or panics when the handle is used.
    #[must_use]
    pub fn from_index(index: usize) -> VariableId {
        VariableId(index)
    }
}

/// A constraint snapshot: sparse `(column, coefficient)` terms, the
/// relation, and the right-hand side.
pub type RowSnapshot = (Vec<(usize, f64)>, Relation, f64);

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program over continuous variables with finite lower bounds.
///
/// Variables default to the bounds `[0, +inf)`. Lower bounds must be finite;
/// upper bounds may be `+inf`. Constraints are stored sparsely and densified
/// by the simplex kernel.
///
/// # Example
///
/// ```
/// use hilp_lp::{LinearProgram, Objective, Relation};
///
/// # fn main() -> Result<(), hilp_lp::LpError> {
/// let mut lp = LinearProgram::new(Objective::Minimize);
/// let x = lp.add_variable(1.0);
/// lp.set_bounds(x, 2.0, 10.0)?;
/// let solution = lp.solve()?;
/// assert!((solution.value(x) - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    objective: Objective,
    costs: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    rows: Vec<Row>,
    iteration_limit: usize,
    budget: Budget,
}

impl LinearProgram {
    /// Creates an empty program with the given optimization direction.
    #[must_use]
    pub fn new(objective: Objective) -> Self {
        LinearProgram {
            objective,
            costs: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            rows: Vec::new(),
            iteration_limit: 50_000,
            budget: Budget::unlimited(),
        }
    }

    /// Returns the optimization direction.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds a variable with the given objective coefficient and the default
    /// bounds `[0, +inf)`, returning its handle.
    pub fn add_variable(&mut self, cost: f64) -> VariableId {
        self.costs.push(cost);
        self.lower.push(0.0);
        self.upper.push(f64::INFINITY);
        VariableId(self.costs.len() - 1)
    }

    /// Overrides the bounds of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::InvalidBounds`] if `lower > upper`,
    /// [`LpError::NonFiniteValue`] if `lower` is not finite or `upper` is NaN
    /// or `-inf`, and [`LpError::UnknownVariable`] for foreign handles.
    pub fn set_bounds(&mut self, var: VariableId, lower: f64, upper: f64) -> Result<(), LpError> {
        self.check_var(var)?;
        if !lower.is_finite() {
            return Err(LpError::NonFiniteValue {
                context: "variable lower bound",
                value: lower,
            });
        }
        if upper.is_nan() || upper == f64::NEG_INFINITY {
            return Err(LpError::NonFiniteValue {
                context: "variable upper bound",
                value: upper,
            });
        }
        if lower > upper {
            return Err(LpError::InvalidBounds {
                index: var.0,
                lower,
                upper,
            });
        }
        self.lower[var.0] = lower;
        self.upper[var.0] = upper;
        Ok(())
    }

    /// Returns the `(lower, upper)` bounds of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] for foreign handles.
    pub fn bounds(&self, var: VariableId) -> Result<(f64, f64), LpError> {
        self.check_var(var)?;
        Ok((self.lower[var.0], self.upper[var.0]))
    }

    /// Changes the objective coefficient of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] for foreign handles and
    /// [`LpError::NonFiniteValue`] for non-finite costs.
    pub fn set_cost(&mut self, var: VariableId, cost: f64) -> Result<(), LpError> {
        self.check_var(var)?;
        if !cost.is_finite() {
            return Err(LpError::NonFiniteValue {
                context: "objective coefficient",
                value: cost,
            });
        }
        self.costs[var.0] = cost;
        Ok(())
    }

    /// Adds the constraint `sum(coeff * var) relation rhs`.
    ///
    /// Repeated variables in `terms` are summed.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] if a term references a foreign
    /// variable and [`LpError::NonFiniteValue`] for non-finite coefficients
    /// or right-hand sides.
    pub fn add_constraint<I>(
        &mut self,
        terms: I,
        relation: Relation,
        rhs: f64,
    ) -> Result<(), LpError>
    where
        I: IntoIterator<Item = (VariableId, f64)>,
    {
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteValue {
                context: "constraint right-hand side",
                value: rhs,
            });
        }
        let mut dense: Vec<f64> = vec![0.0; self.num_variables()];
        for (var, coeff) in terms {
            self.check_var(var)?;
            if !coeff.is_finite() {
                return Err(LpError::NonFiniteValue {
                    context: "constraint coefficient",
                    value: coeff,
                });
            }
            dense[var.0] += coeff;
        }
        let coeffs = dense
            .into_iter()
            .enumerate()
            .filter(|(_, c)| *c != 0.0)
            .collect();
        self.rows.push(Row {
            coeffs,
            relation,
            rhs,
        });
        Ok(())
    }

    /// Caps the total number of simplex pivots across both phases (and
    /// the artificial drive-out between them). Defaults to 50,000.
    pub fn set_iteration_limit(&mut self, limit: usize) {
        self.iteration_limit = limit;
    }

    /// Attaches a solve [`Budget`] whose deadline and cancellation token
    /// are checked cooperatively every few pivots.
    ///
    /// The LP layer never charges the budget's node meter — callers that
    /// own a node budget (e.g. a MILP branch-and-bound driving many LP
    /// relaxations) charge it per node themselves; the simplex only
    /// observes deadline expiry and cancellation.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Solves the program with the two-phase primal simplex method.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the pivot budget is exhausted
    /// and [`LpError::BudgetExhausted`] if an attached [`Budget`] expires or
    /// is cancelled mid-solve. Infeasibility and unboundedness are reported
    /// through the returned [`Solution`]'s status, not as errors.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self)
    }

    pub(crate) fn costs(&self) -> &[f64] {
        &self.costs
    }

    pub(crate) fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    pub(crate) fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// A snapshot of all constraints as `(terms, relation, rhs)` triples,
    /// for presolve-style passes that inspect rows while mutating bounds.
    #[must_use]
    pub fn rows_snapshot(&self) -> Vec<RowSnapshot> {
        self.rows
            .iter()
            .map(|r| (r.coeffs.clone(), r.relation, r.rhs))
            .collect()
    }

    pub(crate) fn iteration_limit(&self) -> usize {
        self.iteration_limit
    }

    pub(crate) fn budget(&self) -> &Budget {
        &self.budget
    }

    fn check_var(&self, var: VariableId) -> Result<(), LpError> {
        if var.0 >= self.num_variables() {
            Err(LpError::UnknownVariable {
                index: var.0,
                num_variables: self.num_variables(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_are_sequentially_indexed() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let a = lp.add_variable(1.0);
        let b = lp.add_variable(2.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(lp.num_variables(), 2);
    }

    #[test]
    fn default_bounds_are_nonnegative() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(0.0);
        assert_eq!(lp.bounds(x).unwrap(), (0.0, f64::INFINITY));
    }

    #[test]
    fn rejects_inverted_bounds() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(0.0);
        let err = lp.set_bounds(x, 5.0, 1.0).unwrap_err();
        assert!(matches!(err, LpError::InvalidBounds { .. }));
    }

    #[test]
    fn rejects_infinite_lower_bound() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(0.0);
        let err = lp.set_bounds(x, f64::NEG_INFINITY, 1.0).unwrap_err();
        assert!(matches!(err, LpError::NonFiniteValue { .. }));
    }

    #[test]
    fn rejects_foreign_variable_in_constraint() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let _ = lp.add_variable(0.0);
        let mut other = LinearProgram::new(Objective::Minimize);
        let _a = other.add_variable(0.0);
        let foreign = VariableId(5);
        let err = lp
            .add_constraint(vec![(foreign, 1.0)], Relation::Le, 1.0)
            .unwrap_err();
        assert!(matches!(err, LpError::UnknownVariable { .. }));
    }

    #[test]
    fn rejects_nan_rhs() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(0.0);
        let err = lp
            .add_constraint(vec![(x, 1.0)], Relation::Le, f64::NAN)
            .unwrap_err();
        assert!(matches!(err, LpError::NonFiniteValue { .. }));
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0), (x, 1.0)], Relation::Le, 4.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
    }
}
