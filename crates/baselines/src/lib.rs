//! The paper's state-of-the-art comparison baselines.
//!
//! HILP is compared against the two prior early-stage models that say
//! anything about Workload-Level Parallelism, both of which only cover its
//! extremes:
//!
//! * **MultiAmdahl (MA)** assumes a *fixed sequential order*: at most one
//!   application phase executes at any time, so WLP is always exactly 1.
//!   Each phase still runs on its fastest compatible cluster, making MA
//!   the minimal-WLP end of the spectrum and systematically pessimistic.
//! * **Parallel-mode Gables** assumes the workload is *embarrassingly
//!   parallel*: phase dependencies (and sequential sections) are
//!   discarded, so WLP reaches its maximal achievable value. Gables does
//!   not support power constraints (the paper drops the power budget when
//!   comparing against it), making it systematically optimistic.
//!
//! Both baselines reuse the exact same encoding, cost model, and scheduler
//! as HILP itself, so every difference in their predictions is
//! attributable to their treatment of WLP — the paper's comparison
//! methodology.
//!
//! # Example
//!
//! ```
//! use hilp_baselines::{gables_parallel, multi_amdahl};
//! use hilp_core::{Hilp, SolverConfig, TimeStepPolicy};
//! use hilp_soc::{Constraints, SocSpec};
//! use hilp_workloads::{Workload, WorkloadVariant};
//!
//! # fn main() -> Result<(), hilp_core::HilpError> {
//! let workload = Workload::rodinia(WorkloadVariant::Default);
//! let soc = SocSpec::new(4).with_gpu(64);
//! let constraints = Constraints::unconstrained();
//! let policy = TimeStepPolicy::sweep();
//! let solver = SolverConfig::sweep();
//!
//! let ma = multi_amdahl(&workload, &soc, &constraints, &policy)?;
//! let hilp = Hilp::new(workload.clone(), soc.clone())
//!     .with_policy(policy)
//!     .with_solver(solver.clone())
//!     .evaluate()?;
//! let gables = gables_parallel(&workload, &soc, &constraints, &policy, &solver)?;
//!
//! // MA <= HILP <= Gables, and the WLP ordering matches (paper Figure 6).
//! assert!(ma.speedup <= hilp.speedup * 1.05);
//! assert!(hilp.speedup <= gables.speedup * 1.05);
//! assert_eq!(ma.avg_wlp, 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use hilp_core::{average_wlp, encode, BudgetKind, Hilp, HilpError, SolverConfig, TimeStepPolicy};
use hilp_sched::TaskId;
use hilp_soc::{Constraints, SocSpec};
use hilp_workloads::{Application, Workload};

/// Prediction of a baseline model for one SoC and workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// Predicted overall workload execution time (s).
    pub makespan_seconds: f64,
    /// Energy of the model's (implied) schedule (J): the sum of each
    /// phase's `power x duration` under the mode the model selects.
    pub energy_joules: f64,
    /// Predicted speedup over fully sequential single-core execution.
    pub speedup: f64,
    /// Average WLP of the model's (implied) schedule.
    pub avg_wlp: f64,
    /// Relative optimality gap of the underlying solve. MultiAmdahl is
    /// exact given its sequential-order assumption, so its gap is 0;
    /// parallel-mode Gables surfaces the scheduler's reported gap.
    pub gap: f64,
    /// Which budget constraint (if any) truncated the underlying solve.
    /// Always `None` for MultiAmdahl (a closed-form sum — there is no
    /// search to budget); Gables surfaces its scheduler's truncation.
    pub truncated: Option<BudgetKind>,
}

/// MultiAmdahl: fully sequential execution, each phase on its fastest
/// compatible cluster.
///
/// Because only one phase is ever active, the resource constraints reduce
/// to per-phase feasibility (a cluster whose lone draw exceeds the budget
/// is unusable), which the shared encoding already enforces. The predicted
/// makespan is simply the sum of per-phase minimum execution times; WLP is
/// 1 by construction.
///
/// # Errors
///
/// Propagates encoding failures (incompatible phases, invalid time step).
pub fn multi_amdahl(
    workload: &Workload,
    soc: &SocSpec,
    constraints: &Constraints,
    policy: &TimeStepPolicy,
) -> Result<BaselineResult, HilpError> {
    // Apply the same adaptive time-step refinement HILP uses so the two
    // models see identical discretization (the paper evaluates all models
    // within one framework; comparing a continuous MA against a
    // discretized HILP would bias the comparison).
    let mut time_step = policy.initial_seconds;
    let mut refinements = 0;
    let (makespan_seconds, energy_joules) = loop {
        let (instance, _) = encode(workload, soc, constraints, time_step)?;
        let total_steps: u64 = (0..instance.num_tasks())
            .map(|t| u64::from(instance.min_duration(TaskId(t))))
            .sum();
        let refine = total_steps > 0
            && total_steps < u64::from(policy.target_steps)
            && refinements < policy.max_refinements;
        if refine {
            refinements += 1;
            time_step /= policy.refine_factor;
            continue;
        }
        // Energy of the implied schedule: each phase runs its fastest
        // mode, ties broken toward the frugal one (watt-steps x tick).
        let energy_steps: f64 = (0..instance.num_tasks())
            .map(|t| {
                let task = TaskId(t);
                let min = instance.min_duration(task);
                instance
                    .task(task)
                    .modes
                    .iter()
                    .filter(|m| m.duration == min)
                    .map(hilp_sched::Mode::energy)
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        break (total_steps as f64 * time_step, energy_steps * time_step);
    };
    let sequential = workload.sequential_cpu_seconds();
    let speedup = if makespan_seconds > 0.0 {
        sequential / makespan_seconds
    } else {
        1.0
    };
    Ok(BaselineResult {
        makespan_seconds,
        energy_joules,
        speedup,
        avg_wlp: 1.0,
        gap: 0.0,
        truncated: None,
    })
}

/// Strips every dependency edge from the workload — Gables' fully parallel
/// execution model. Public so sweep drivers can reconstruct the effective
/// workload Gables schedules (e.g. to key a memoization cache).
#[must_use]
pub fn without_dependencies(workload: &Workload) -> Workload {
    let apps = workload
        .applications()
        .iter()
        .map(|a| Application {
            name: a.name.clone(),
            phases: a.phases.clone(),
            dependencies: Vec::new(),
            start_dependencies: Vec::new(),
        })
        .collect();
    Workload::new(format!("{} (no deps)", workload.name()), apps)
}

/// Parallel-mode Gables: schedules the workload with all phase
/// dependencies discarded and without a power budget (Gables cannot
/// express one; bandwidth, Gables' native constraint, is kept).
///
/// # Errors
///
/// Propagates encoding and scheduling failures.
pub fn gables_parallel(
    workload: &Workload,
    soc: &SocSpec,
    constraints: &Constraints,
    policy: &TimeStepPolicy,
    solver: &SolverConfig,
) -> Result<BaselineResult, HilpError> {
    let parallel = without_dependencies(workload);
    let eval = Hilp::new(parallel, soc.clone())
        .with_constraints(gables_constraints(constraints))
        .with_policy(*policy)
        .with_solver(solver.clone())
        .evaluate()?;
    // Speedup is still measured against the original workload's sequential
    // baseline (identical phase times, so the value is unchanged, but be
    // explicit about the reference).
    let sequential = workload.sequential_cpu_seconds();
    let speedup = if eval.makespan_seconds > 0.0 {
        sequential / eval.makespan_seconds
    } else {
        1.0
    };
    Ok(BaselineResult {
        makespan_seconds: eval.makespan_seconds,
        energy_joules: eval.energy_joules,
        speedup,
        avg_wlp: average_wlp(&eval.schedule, &eval.instance),
        gap: eval.gap,
        truncated: eval.truncated,
    })
}

/// The constraints parallel-mode Gables actually enforces: the power
/// budget is dropped (Gables cannot express one), bandwidth is kept.
#[must_use]
pub fn gables_constraints(constraints: &Constraints) -> Constraints {
    Constraints {
        power_w: None,
        bandwidth_gbps: constraints.bandwidth_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilp_soc::DsaSpec;
    use hilp_workloads::WorkloadVariant;

    fn fast_solver() -> SolverConfig {
        SolverConfig {
            heuristic_starts: 60,
            local_search_passes: 2,
            exact_node_budget: 0,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn ma_wlp_is_always_one() {
        let w = Workload::rodinia(WorkloadVariant::Default);
        for soc in [
            SocSpec::new(1),
            SocSpec::new(8).with_gpu(64),
            SocSpec::new(4).with_dsa(DsaSpec::new(16, "LUD")),
        ] {
            let r = multi_amdahl(
                &w,
                &soc,
                &Constraints::unconstrained(),
                &TimeStepPolicy::sweep(),
            )
            .unwrap();
            assert_eq!(r.avg_wlp, 1.0);
        }
    }

    #[test]
    fn ma_is_insensitive_to_cpu_count() {
        // Figure 6: "MA also consistently reports pessimistic speedups ...
        // because the GPU configuration does not change".
        let w = Workload::rodinia(WorkloadVariant::Rodinia);
        let policy = TimeStepPolicy::sweep();
        let one = multi_amdahl(
            &w,
            &SocSpec::new(1).with_gpu(64),
            &Constraints::unconstrained(),
            &policy,
        )
        .unwrap();
        let eight = multi_amdahl(
            &w,
            &SocSpec::new(8).with_gpu(64),
            &Constraints::unconstrained(),
            &policy,
        )
        .unwrap();
        let rel = (one.speedup - eight.speedup).abs() / one.speedup;
        assert!(rel < 0.05, "MA speedup varied {rel} with CPU count");
    }

    #[test]
    fn ma_rodinia_speedup_matches_paper_band() {
        // Figure 6a: MA reports a speedup of 4.9 for Rodinia on a 64-SM SoC.
        let w = Workload::rodinia(WorkloadVariant::Rodinia);
        let r = multi_amdahl(
            &w,
            &SocSpec::new(4).with_gpu(64),
            &Constraints::unconstrained(),
            &TimeStepPolicy::validation(),
        )
        .unwrap();
        assert!(
            r.speedup > 3.9 && r.speedup < 5.9,
            "MA speedup {}",
            r.speedup
        );
    }

    #[test]
    fn ma_speedup_rises_as_serial_phases_shrink() {
        // Figure 6: MA's speedup grows from Rodinia to Optimized because
        // the un-hideable serial fraction shrinks. (The paper reports 4.9
        // and 19.8; our Table II reading reproduces the Rodinia figure
        // exactly and preserves the ordering for Optimized — see
        // EXPERIMENTS.md for the quantitative discussion.)
        let policy = TimeStepPolicy::validation();
        let soc = SocSpec::new(4).with_gpu(64);
        let speedup = |variant| {
            multi_amdahl(
                &Workload::rodinia(variant),
                &soc,
                &Constraints::unconstrained(),
                &policy,
            )
            .unwrap()
            .speedup
        };
        let rodinia = speedup(WorkloadVariant::Rodinia);
        let default = speedup(WorkloadVariant::Default);
        let optimized = speedup(WorkloadVariant::Optimized);
        assert!(rodinia < default && default < optimized);
        assert!(optimized > 15.0, "MA-Optimized speedup {optimized}");
    }

    #[test]
    fn gables_exceeds_hilp_which_exceeds_ma() {
        let w = Workload::rodinia(WorkloadVariant::Default);
        let soc = SocSpec::new(4).with_gpu(64);
        let constraints = Constraints::unconstrained();
        let policy = TimeStepPolicy::sweep();
        let solver = fast_solver();

        let ma = multi_amdahl(&w, &soc, &constraints, &policy).unwrap();
        let hilp = Hilp::new(w.clone(), soc.clone())
            .with_policy(policy)
            .with_solver(solver.clone())
            .evaluate()
            .unwrap();
        let gables = gables_parallel(&w, &soc, &constraints, &policy, &solver).unwrap();

        // HILP schedules are near-optimal, not exactly optimal, so allow a
        // small tolerance in the ordering.
        assert!(ma.speedup <= hilp.speedup * 1.05);
        assert!(hilp.speedup <= gables.speedup * 1.05);
        assert!(ma.avg_wlp <= hilp.avg_wlp + 1e-9);
        assert!(hilp.avg_wlp <= gables.avg_wlp + 0.1);
    }

    #[test]
    fn gables_ignores_power_budgets() {
        let w = Workload::rodinia(WorkloadVariant::Default);
        let soc = SocSpec::new(4).with_gpu(64);
        let policy = TimeStepPolicy::sweep();
        let solver = fast_solver();
        let free =
            gables_parallel(&w, &soc, &Constraints::unconstrained(), &policy, &solver).unwrap();
        let capped = gables_parallel(
            &w,
            &soc,
            &Constraints::unconstrained().with_power(20.0),
            &policy,
            &solver,
        )
        .unwrap();
        assert!((free.speedup - capped.speedup).abs() < 1e-9);
    }

    #[test]
    fn baselines_report_their_optimality_gap() {
        let w = Workload::rodinia(WorkloadVariant::Default);
        let soc = SocSpec::new(2).with_gpu(16);
        let c = Constraints::unconstrained();
        let policy = TimeStepPolicy::sweep();
        let ma = multi_amdahl(&w, &soc, &c, &policy).unwrap();
        assert_eq!(ma.gap, 0.0, "MA is exact under its own assumption");
        let g = gables_parallel(&w, &soc, &c, &policy, &fast_solver()).unwrap();
        assert!(g.gap >= 0.0 && g.gap.is_finite(), "Gables gap {}", g.gap);
    }

    #[test]
    fn stripping_dependencies_empties_every_dag() {
        let w = Workload::rodinia(WorkloadVariant::Default);
        let stripped = without_dependencies(&w);
        assert!(stripped
            .applications()
            .iter()
            .all(|a| a.dependencies.is_empty()));
        assert_eq!(stripped.num_phases(), w.num_phases());
    }
}
