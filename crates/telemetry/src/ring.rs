//! A bounded, lock-free, multi-producer event ring.
//!
//! Producers claim a monotonically increasing ticket with one
//! `fetch_add` and write their event into slot `ticket % capacity`; when
//! the ring is full the oldest events are overwritten (the drain reports
//! how many were lost). Slots are written seqlock-style — a *writing*
//! marker, then the payload, then the final sequence tag with `Release`
//! ordering — so a concurrent drain can detect and skip torn slots
//! without any `unsafe` code. Drains are intended to run when producers
//! are quiescent (end of a solve or sweep); a drain that races a writer
//! loses at most the slots being rewritten at that instant.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// What an [`Event`] describes. Stored as a `u8` in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A completed span: `a` packs the span-name id (low 32 bits) and
    /// nesting depth (high 32 bits), `b` is the start time in µs, `c`
    /// the duration in µs. `t_us` is the end time.
    Span = 0,
    /// A new incumbent solution: `a` is the source
    /// ([`crate::IncumbentSource`]), `b` the search-node id, `c` the
    /// objective value as `f64` bits.
    Incumbent = 1,
    /// A proven lower bound: `a` is the source ([`crate::BoundSource`]),
    /// `b` the search-node id, `c` the bound value as `f64` bits.
    Bound = 2,
    /// A pruned subtree: `a` is the reason ([`crate::PruneReason`]),
    /// `b` the search-node id, `c` the pruning bound as `f64` bits.
    Prune = 3,
    /// A refinement level solved during a sweep: `a` is the design-point
    /// index, `b` the level number, `c` the level makespan in steps.
    Level = 4,
    /// A progress message was emitted (payload unused).
    Progress = 5,
    /// A budget expired or a cancellation was observed: `a` is the
    /// layer ([`crate::BudgetLayer`]), `b` the expired
    /// [`hilp_budget::BudgetKind`] tag, `c` the work units spent when
    /// the budget tripped.
    Budget = 6,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(EventKind::Span),
            1 => Some(EventKind::Incumbent),
            2 => Some(EventKind::Bound),
            3 => Some(EventKind::Prune),
            4 => Some(EventKind::Level),
            5 => Some(EventKind::Progress),
            6 => Some(EventKind::Budget),
            _ => None,
        }
    }
}

/// One telemetry event. The payload words `a`/`b`/`c` are interpreted
/// per [`EventKind`]; see each variant's documentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Microseconds since the owning [`crate::Telemetry`] was created
    /// (monotonic clock).
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Numeric id of the emitting thread (dense, assigned on first use).
    pub thread: u32,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

/// Sequence value marking a slot that is mid-write.
const WRITING: u64 = u64::MAX;

struct Slot {
    /// `ticket + 1` once the slot's payload is fully published, `0`
    /// when never written, [`WRITING`] while a writer is inside.
    seq: AtomicU64,
    t_us: AtomicU64,
    /// `kind as u64 | (thread as u64) << 8`.
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            t_us: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

/// The bounded multi-producer ring. See the module docs for the
/// publication protocol.
pub(crate) struct EventRing {
    slots: Vec<Slot>,
    /// Total events ever pushed; the next ticket to hand out.
    head: AtomicU64,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
}

/// Result of [`EventRing::snapshot`]: the surviving events in push
/// order plus how many older events were overwritten (or torn by a
/// concurrent writer) and therefore lost.
pub(crate) struct Snapshot {
    pub events: Vec<Event>,
    pub dropped: u64,
}

impl EventRing {
    /// Creates a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 8).
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        EventRing {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            mask: cap - 1,
        }
    }

    /// Publishes one event, overwriting the oldest if the ring is full.
    pub(crate) fn push(&self, ev: &Event) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        let slot = &self.slots[ticket as usize & self.mask];
        slot.seq.store(WRITING, Ordering::Relaxed);
        slot.t_us.store(ev.t_us, Ordering::Relaxed);
        slot.meta.store(
            ev.kind as u64 | (u64::from(ev.thread) << 8),
            Ordering::Relaxed,
        );
        slot.a.store(ev.a, Ordering::Relaxed);
        slot.b.store(ev.b, Ordering::Relaxed);
        slot.c.store(ev.c, Ordering::Relaxed);
        // Publish: everything above happens-before a reader that
        // observes this sequence value.
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Total events ever pushed (including overwritten ones).
    pub(crate) fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Snapshots the surviving window in push order without consuming
    /// it. Slots that are mid-write (only possible when racing live
    /// producers) are counted as dropped.
    pub(crate) fn snapshot(&self) -> Snapshot {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.mask as u64 + 1;
        let start = head.saturating_sub(cap);
        let mut dropped = start;
        let mut events = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            #[allow(clippy::cast_possible_truncation)]
            let slot = &self.slots[ticket as usize & self.mask];
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                dropped += 1;
                continue;
            }
            let t_us = slot.t_us.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let c = slot.c.load(Ordering::Relaxed);
            // Seqlock re-check: if a writer got in between, discard the
            // (possibly torn) payload.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != ticket + 1 {
                dropped += 1;
                continue;
            }
            #[allow(clippy::cast_possible_truncation)]
            let kind = match EventKind::from_u8(meta as u8) {
                Some(k) => k,
                None => {
                    dropped += 1;
                    continue;
                }
            };
            #[allow(clippy::cast_possible_truncation)]
            events.push(Event {
                t_us,
                kind,
                thread: (meta >> 8) as u32,
                a,
                b,
                c,
            });
        }
        Snapshot { events, dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event {
            t_us: n,
            kind: EventKind::Progress,
            thread: 0,
            a: n,
            b: 2 * n,
            c: 3 * n,
        }
    }

    #[test]
    fn preserves_push_order() {
        let ring = EventRing::new(16);
        for n in 0..10 {
            ring.push(&ev(n));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 10);
        assert!(snap.events.iter().enumerate().all(|(i, e)| e.a == i as u64));
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = EventRing::new(8);
        for n in 0..20 {
            ring.push(&ev(n));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.dropped, 12);
        assert_eq!(snap.events.len(), 8);
        assert_eq!(snap.events[0].a, 12);
        assert_eq!(snap.events[7].a, 19);
        assert_eq!(ring.pushed(), 20);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let ring = EventRing::new(9);
        for n in 0..16 {
            ring.push(&ev(n));
        }
        assert_eq!(ring.snapshot().events.len(), 16);
    }

    #[test]
    fn concurrent_pushes_all_survive_when_ring_is_large() {
        let ring = EventRing::new(4096);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for n in 0..512 {
                        ring.push(&ev(t * 10_000 + n));
                    }
                });
            }
        });
        let snap = ring.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 2048);
        // Per-thread subsequences keep their order even though the
        // interleaving is arbitrary.
        for t in 0..4u64 {
            let sub: Vec<u64> = snap
                .events
                .iter()
                .filter(|e| e.a / 10_000 == t)
                .map(|e| e.a % 10_000)
                .collect();
            assert_eq!(sub, (0..512).collect::<Vec<u64>>());
        }
    }
}
