//! Rendering a [`Journal`] as a per-phase time/attribution breakdown —
//! the `hilp trace-summary` view.

use crate::journal::{Journal, Record};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// Span name (e.g. `dse.point`).
    pub name: String,
    /// How many spans carried this name.
    pub count: u64,
    /// Summed duration, µs (parallel spans sum, so this can exceed the
    /// wall clock).
    pub total_us: u64,
    /// Summed *self* time, µs: duration minus time spent in directly
    /// nested child spans on the same thread.
    pub self_us: u64,
}

/// A per-phase breakdown of a search-trace journal.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Journal time range (first to last recorded timestamp), µs.
    pub wall_us: u64,
    /// Fraction of the wall clock covered by at least one named span,
    /// in percent (union over all threads, projected on the time axis).
    pub attributed_pct: f64,
    /// Per-name rows, sorted by total time descending.
    pub spans: Vec<SpanRow>,
    /// Distinct threads that recorded anything.
    pub threads: u64,
    /// Final counter values, in journal order.
    pub counters: Vec<(String, u64)>,
    /// Event tallies: incumbents, bounds, prunes, levels recorded.
    pub incumbents: u64,
    /// Bound events recorded.
    pub bounds: u64,
    /// Prune events recorded.
    pub prunes: u64,
    /// Level events recorded.
    pub levels: u64,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

struct SpanInterval {
    name: String,
    thread: u32,
    depth: u32,
    start: u64,
    end: u64,
}

impl TraceSummary {
    /// Computes the breakdown of a journal.
    #[must_use]
    pub fn from_journal(journal: &Journal) -> TraceSummary {
        let mut spans = Vec::new();
        let mut threads = std::collections::BTreeSet::new();
        let (mut t_min, mut t_max) = (u64::MAX, 0u64);
        let mut touch =
            |thread: u32, lo: u64, hi: u64, threads: &mut std::collections::BTreeSet<u32>| {
                threads.insert(thread);
                t_min = t_min.min(lo);
                t_max = t_max.max(hi);
            };
        let (mut incumbents, mut bounds, mut prunes, mut levels, mut dropped) = (0, 0, 0, 0, 0);
        let mut counters = Vec::new();
        for record in &journal.records {
            match record {
                Record::Span {
                    name,
                    thread,
                    depth,
                    start_us,
                    dur_us,
                } => {
                    let end = start_us.saturating_add(*dur_us);
                    touch(*thread, *start_us, end, &mut threads);
                    spans.push(SpanInterval {
                        name: name.clone(),
                        thread: *thread,
                        depth: *depth,
                        start: *start_us,
                        end,
                    });
                }
                Record::Incumbent { t_us, thread, .. } => {
                    incumbents += 1;
                    touch(*thread, *t_us, *t_us, &mut threads);
                }
                Record::Bound { t_us, thread, .. } => {
                    bounds += 1;
                    touch(*thread, *t_us, *t_us, &mut threads);
                }
                Record::Prune { t_us, thread, .. } => {
                    prunes += 1;
                    touch(*thread, *t_us, *t_us, &mut threads);
                }
                Record::Level { t_us, thread, .. } => {
                    levels += 1;
                    touch(*thread, *t_us, *t_us, &mut threads);
                }
                Record::Budget { t_us, thread, .. } => {
                    touch(*thread, *t_us, *t_us, &mut threads);
                }
                Record::Progress { t_us, thread } => {
                    touch(*thread, *t_us, *t_us, &mut threads);
                }
                Record::Counter { name, value } => counters.push((name.clone(), *value)),
                Record::Dropped { count } => dropped += count,
                // Server wire records carry no thread attribution; they
                // don't contribute to the per-thread breakdown.
                Record::Job { .. } | Record::Point { .. } => {}
            }
        }
        let wall_us = if t_min == u64::MAX { 0 } else { t_max - t_min };

        // Self time: a span's duration minus its directly nested child
        // spans (same thread, depth exactly one deeper, interval
        // contained). Quadratic in span count, which journals keep small
        // by design (spans are per phase/point/level, not per node).
        let mut rows: BTreeMap<&str, SpanRow> = BTreeMap::new();
        for s in &spans {
            let child_us: u64 = spans
                .iter()
                .filter(|c| {
                    c.thread == s.thread
                        && c.depth == s.depth + 1
                        && c.start >= s.start
                        && c.end <= s.end
                })
                .map(|c| c.end - c.start)
                .sum();
            let row = rows.entry(s.name.as_str()).or_insert_with(|| SpanRow {
                name: s.name.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
            });
            row.count += 1;
            row.total_us += s.end - s.start;
            row.self_us += (s.end - s.start).saturating_sub(child_us);
        }
        let mut span_rows: Vec<SpanRow> = rows.into_values().collect();
        span_rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

        // Attribution: union of all span intervals on the time axis.
        let mut intervals: Vec<(u64, u64)> = spans.iter().map(|s| (s.start, s.end)).collect();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut cursor = 0u64;
        for (lo, hi) in intervals {
            let lo = lo.max(cursor);
            if hi > lo {
                covered += hi - lo;
                cursor = hi;
            }
            cursor = cursor.max(hi);
        }
        #[allow(clippy::cast_precision_loss)]
        let attributed_pct = if wall_us == 0 {
            0.0
        } else {
            100.0 * covered as f64 / wall_us as f64
        };

        TraceSummary {
            wall_us,
            attributed_pct,
            spans: span_rows,
            threads: threads.len() as u64,
            counters,
            incumbents,
            bounds,
            prunes,
            levels,
            dropped,
        }
    }

    /// Renders the breakdown as plain text for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall clock {}  |  {:.1}% attributed to named spans  |  {} thread(s)",
            fmt_us(self.wall_us),
            self.attributed_pct,
            self.threads
        );
        if !self.spans.is_empty() {
            let name_w = self
                .spans
                .iter()
                .map(|r| r.name.len())
                .max()
                .unwrap_or(4)
                .max(4);
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>7}",
                "span", "count", "total", "self", "% wall"
            );
            for row in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>6.1}%",
                    row.name,
                    row.count,
                    fmt_us(row.total_us),
                    fmt_us(row.self_us),
                    self.pct(row.total_us),
                );
            }
        }
        let _ = writeln!(
            out,
            "events: {} incumbents, {} bounds, {} prunes, {} levels, {} dropped",
            self.incumbents, self.bounds, self.prunes, self.levels, self.dropped
        );
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        out
    }

    /// Renders the breakdown as a GitHub-flavored-markdown fragment
    /// (used by the CI health dashboard).
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall clock **{}**, **{:.1}%** attributed to named spans, {} thread(s)\n",
            fmt_us(self.wall_us),
            self.attributed_pct,
            self.threads
        );
        if !self.spans.is_empty() {
            out.push_str("| span | count | total | self | % wall |\n");
            out.push_str("|---|---:|---:|---:|---:|\n");
            for row in &self.spans {
                let _ = writeln!(
                    out,
                    "| `{}` | {} | {} | {} | {:.1}% |",
                    row.name,
                    row.count,
                    fmt_us(row.total_us),
                    fmt_us(row.self_us),
                    self.pct(row.total_us),
                );
            }
        }
        let _ = writeln!(
            out,
            "\n{} incumbents, {} bounds, {} prunes, {} levels, {} dropped",
            self.incumbents, self.bounds, self.prunes, self.levels, self.dropped
        );
        out
    }

    fn pct(&self, us: u64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.wall_us == 0 {
            0.0
        } else {
            100.0 * us as f64 / self.wall_us as f64
        }
    }
}

/// Formats a µs quantity with an adaptive unit.
fn fmt_us(us: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let us_f = us as f64;
    if us >= 1_000_000 {
        format!("{:.3}s", us_f / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us_f / 1e3)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Record;

    fn span(name: &str, thread: u32, depth: u32, start: u64, dur: u64) -> Record {
        Record::Span {
            name: name.to_string(),
            thread,
            depth,
            start_us: start,
            dur_us: dur,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let journal = Journal {
            records: vec![
                span("root", 0, 0, 0, 100),
                span("child", 0, 1, 10, 30),
                span("grandchild", 0, 2, 15, 20),
                // Same name on another thread, no children there.
                span("child", 1, 1, 0, 50),
            ],
        };
        let summary = TraceSummary::from_journal(&journal);
        let row = |name: &str| {
            summary
                .spans
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .clone()
        };
        assert_eq!(row("root").self_us, 70); // 100 - 30, grandchild not double-counted
        assert_eq!(row("child").total_us, 80);
        assert_eq!(row("child").self_us, 60); // (30 - 20) + 50
        assert_eq!(row("grandchild").self_us, 20);
        assert_eq!(summary.threads, 2);
    }

    #[test]
    fn attribution_is_the_union_of_span_intervals() {
        let journal = Journal {
            records: vec![
                span("a", 0, 0, 0, 40),
                span("b", 1, 0, 20, 40), // overlaps a: union is [0, 60)
                // A lone event at t=100 stretches the wall clock.
                Record::Progress {
                    t_us: 100,
                    thread: 0,
                },
            ],
        };
        let summary = TraceSummary::from_journal(&journal);
        assert_eq!(summary.wall_us, 100);
        assert!((summary.attributed_pct - 60.0).abs() < 1e-9);
    }

    #[test]
    fn empty_journal_summarizes_to_zero() {
        let summary = TraceSummary::from_journal(&Journal::default());
        assert_eq!(summary.wall_us, 0);
        assert_eq!(summary.attributed_pct, 0.0);
        assert!(summary.spans.is_empty());
        assert!(!summary.render().is_empty());
    }

    #[test]
    fn render_includes_rows_counters_and_events() {
        let journal = Journal {
            records: vec![
                span("dse.sweep", 0, 0, 0, 1000),
                Record::Counter {
                    name: "bnb.nodes".to_string(),
                    value: 5,
                },
                Record::Dropped { count: 3 },
            ],
        };
        let summary = TraceSummary::from_journal(&journal);
        let text = summary.render();
        assert!(text.contains("dse.sweep"));
        assert!(text.contains("bnb.nodes = 5"));
        assert!(text.contains("3 dropped"));
        let md = summary.render_markdown();
        assert!(md.contains("| `dse.sweep` |"));
    }
}
