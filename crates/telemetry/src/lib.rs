//! Zero-dependency structured telemetry for the HILP solver stack.
//!
//! The entry point is [`Telemetry`]: a cheaply clonable handle that is
//! either *disabled* (the default — every operation is a single branch
//! on an `Option`, no allocation, no atomics) or *enabled*, in which
//! case it owns:
//!
//! - a fixed set of atomic [`Counter`]s (nodes expanded, prunes by
//!   reason, incumbent updates, simplex pivots, propagation rounds,
//!   inheritance hits, …),
//! - a bounded lock-free event ring receiving one [`Event`] per
//!   incumbent / bound / prune / level / completed span, and
//! - a registry of span names, so spans cost one atomic timestamp pair
//!   plus one ring push.
//!
//! Spans are created with [`Telemetry::span`] (or the [`span!`] macro),
//! nest per thread, and are timed on the monotonic clock. Everything
//! recorded can be drained into a [`Journal`] and written as JSONL — the
//! *search-trace journal* — which [`TraceSummary`] renders as a
//! per-phase time/attribution breakdown.
//!
//! Telemetry is strictly observational: enabling it never changes any
//! solver decision, so results are bit-identical with it on or off.
//! That is why [`Telemetry`] compares equal to every other instance —
//! configs that differ only in telemetry describe the same computation.
//!
//! # Example
//!
//! ```
//! use hilp_telemetry::{Counter, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _solve = tel.span("demo.solve");
//!     tel.incr(Counter::BnbNodes);
//!     tel.incumbent(hilp_telemetry::IncumbentSource::Heuristic, 0, 42.0);
//! }
//! let journal = tel.journal();
//! assert!(journal.to_jsonl().lines().count() >= 2);
//! ```

mod journal;
mod ring;
mod summary;

pub use hilp_budget::BudgetKind;
pub use journal::{
    check_single_solve_replay, push_json_string, Fields, Journal, JsonValue, Record,
};
pub use ring::{Event, EventKind};
pub use summary::{SpanRow, TraceSummary};

use ring::EventRing;
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default event-ring capacity (events), per enabled handle.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Where an incumbent solution came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncumbentSource {
    /// The multi-start heuristic.
    Heuristic,
    /// A warm incumbent lifted from another solve.
    Warm,
    /// The scheduling branch-and-bound.
    Bnb,
    /// The MILP branch-and-bound (values are in minimization sense).
    Milp,
}

/// Where a proven lower bound came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSource {
    /// The instance's own combinatorial bound.
    Combinatorial,
    /// A bound inherited from another solve (e.g. a dominating design
    /// point); may be weaker than the combinatorial bound.
    External,
    /// The final bound proven by this solve.
    Proved,
    /// The MILP LP-relaxation bound (minimization sense).
    Milp,
}

/// Why a search subtree was pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// The subtree's bound could not beat the incumbent.
    Bound,
    /// No feasible placement existed.
    Infeasible,
    /// The node budget ran out.
    Budget,
}

macro_rules! tagged_enum_str {
    ($ty:ident { $($variant:ident => $name:literal),+ $(,)? }) => {
        impl $ty {
            /// Stable string tag used in the JSONL journal.
            #[must_use]
            pub fn as_str(self) -> &'static str {
                match self {
                    $($ty::$variant => $name,)+
                }
            }

            /// Inverse of [`Self::as_str`].
            #[must_use]
            pub fn from_str_tag(s: &str) -> Option<Self> {
                match s {
                    $($name => Some($ty::$variant),)+
                    _ => None,
                }
            }

            pub(crate) fn to_u64(self) -> u64 {
                self as u64
            }

            pub(crate) fn from_u64(v: u64) -> Option<Self> {
                [$($ty::$variant),+].into_iter().find(|x| *x as u64 == v)
            }
        }
    };
}

tagged_enum_str!(IncumbentSource {
    Heuristic => "heuristic",
    Warm => "warm",
    Bnb => "bnb",
    Milp => "milp",
});
tagged_enum_str!(BoundSource {
    Combinatorial => "combinatorial",
    External => "external",
    Proved => "proved",
    Milp => "milp",
});
tagged_enum_str!(PruneReason {
    Bound => "bound",
    Infeasible => "infeasible",
    Budget => "budget",
});

/// Which solver layer observed a budget expiry or cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetLayer {
    /// The multi-start SGS heuristic (restart boundaries).
    Heuristic,
    /// The scheduling branch-and-bound (node expansion).
    Bnb,
    /// The MILP branch-and-bound (node pops).
    Milp,
    /// The simplex pivot loop.
    Simplex,
    /// The adaptive-refinement loop (level boundaries).
    Refinement,
    /// The design-space sweep (point boundaries).
    Sweep,
    /// The online dispatcher (admission boundaries).
    Online,
}

tagged_enum_str!(BudgetLayer {
    Heuristic => "heuristic",
    Bnb => "bnb",
    Milp => "milp",
    Simplex => "simplex",
    Refinement => "refinement",
    Sweep => "sweep",
    Online => "online",
});

macro_rules! counters {
    ($($variant:ident => $name:literal),+ $(,)?) => {
        /// The fixed set of solver counters. Each is an atomic `u64`
        /// on the enabled handle; the string form (used in journals and
        /// summaries) is [`Counter::name`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Counter {
            $(
                #[doc = concat!("`", $name, "`")]
                $variant,
            )+
        }

        impl Counter {
            /// Every counter, in declaration order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant),+];

            /// The counter's stable dotted name (e.g. `bnb.nodes`).
            #[must_use]
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)+
                }
            }
        }
    };
}

counters! {
    HeuristicJobsRequested => "heuristic.jobs_requested",
    HeuristicJobsExecuted => "heuristic.jobs_executed",
    HeuristicBoundTerminations => "heuristic.bound_terminations",
    BnbNodes => "bnb.nodes",
    BnbIncumbents => "bnb.incumbents",
    BnbPrunesBound => "bnb.prunes_bound",
    BnbPrunesInfeasible => "bnb.prunes_infeasible",
    BnbPrunesBudget => "bnb.prunes_budget",
    BnbRounds => "bnb.rounds",
    BnbSteals => "bnb.steals",
    MilpNodes => "milp.nodes",
    MilpIncumbents => "milp.incumbents",
    MilpPrunesBound => "milp.prunes_bound",
    MilpPrunesInfeasible => "milp.prunes_infeasible",
    MilpPresolveRounds => "milp.presolve_rounds",
    MilpPresolveTightenings => "milp.presolve_tightenings",
    SimplexPivots => "lp.simplex_pivots",
    LevelsSolved => "core.levels_solved",
    InheritedBoundLevels => "core.inherited_bound_levels",
    SweepPoints => "dse.points",
    SweepCacheHits => "dse.cache_hits",
    SweepSteals => "dse.steals",
    SweepTruncatedPoints => "dse.truncated_points",
    SweepParallelismFallback => "dse.parallelism_fallback",
    BudgetExpiries => "budget.expiries",
    BudgetCancellations => "budget.cancellations",
    ProgressMessages => "progress.messages",
}

struct Inner {
    epoch: Instant,
    counters: Vec<AtomicU64>,
    ring: EventRing,
    /// Interned span names; a span event stores an index into this.
    span_names: Mutex<Vec<&'static str>>,
}

static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);
thread_local! {
    /// Dense per-thread id, assigned on first telemetry use.
    static THREAD_ID: u32 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Current span nesting depth on this thread.
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn current_thread_id() -> u32 {
    THREAD_ID.with(|id| *id)
}

/// The telemetry handle. See the [crate docs](crate) for an overview.
///
/// Cloning is cheap (an `Arc` bump when enabled, a copy when disabled)
/// and clones share the same counters, ring, and clock epoch.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// Telemetry is observational only — it never influences solver
/// decisions — so two configs differing only in telemetry describe the
/// same computation and must compare equal.
impl PartialEq for Telemetry {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for Telemetry {}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(inner) => write!(f, "Telemetry(enabled, {} events)", inner.ring.pushed()),
        }
    }
}

impl Telemetry {
    /// The no-op handle: every operation is a single `Option` branch.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with the [default ring
    /// capacity](DEFAULT_RING_CAPACITY).
    #[must_use]
    pub fn enabled() -> Self {
        Telemetry::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle whose event ring holds at least `events`
    /// entries (rounded up to a power of two) before overwriting the
    /// oldest.
    #[must_use]
    pub fn with_capacity(events: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                counters: (0..Counter::ALL.len()).map(|_| AtomicU64::new(0)).collect(),
                ring: EventRing::new(events),
                span_names: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this handle was created (monotonic clock);
    /// `0` when disabled.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            u64::try_from(i.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
        })
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Current value of a counter; `0` when disabled.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.counters[counter as usize].load(Ordering::Relaxed))
    }

    /// Snapshot of every counter in [`Counter::ALL`] order.
    #[must_use]
    pub fn counters(&self) -> Vec<(Counter, u64)> {
        Counter::ALL.iter().map(|&c| (c, self.counter(c))).collect()
    }

    /// Opens a nestable, monotonic-clock-timed span. The span ends (and
    /// its event is recorded) when the returned guard drops. `name`
    /// must be a static string — names are interned once and referenced
    /// by id from the ring.
    #[must_use = "a span is timed until the returned guard is dropped"]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let Some(inner) = &self.inner else {
            return Span {
                inner: None,
                name_id: 0,
                start_us: 0,
                depth: 0,
            };
        };
        let name_id = inner.intern(name);
        let depth = SPAN_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Span {
            inner: Some(inner),
            name_id,
            start_us: self.elapsed_us(),
            depth,
        }
    }

    fn push(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        if let Some(inner) = &self.inner {
            inner.ring.push(&Event {
                t_us: self.elapsed_us(),
                kind,
                thread: current_thread_id(),
                a,
                b,
                c,
            });
        }
    }

    /// Records a new incumbent solution of objective `value` found at
    /// search node `node`.
    #[inline]
    pub fn incumbent(&self, source: IncumbentSource, node: u64, value: f64) {
        if self.inner.is_some() {
            self.push(EventKind::Incumbent, source.to_u64(), node, value.to_bits());
        }
    }

    /// Records a proven lower bound `value` at search node `node`.
    #[inline]
    pub fn bound(&self, source: BoundSource, node: u64, value: f64) {
        if self.inner.is_some() {
            self.push(EventKind::Bound, source.to_u64(), node, value.to_bits());
        }
    }

    /// Records a pruned subtree at search node `node` whose bound was
    /// `bound`.
    #[inline]
    pub fn prune(&self, reason: PruneReason, node: u64, bound: f64) {
        if self.inner.is_some() {
            self.push(EventKind::Prune, reason.to_u64(), node, bound.to_bits());
        }
    }

    /// Records a solved refinement level during a sweep.
    #[inline]
    pub fn level(&self, point: u64, level: u64, makespan: u64) {
        if self.inner.is_some() {
            self.push(EventKind::Level, point, level, makespan);
        }
    }

    /// Records a budget expiry or an observed cancellation at `layer`
    /// after `spent` work units, and bumps the matching counter
    /// ([`Counter::BudgetCancellations`] for
    /// [`BudgetKind::Cancelled`],
    /// [`Counter::BudgetExpiries`] otherwise).
    #[inline]
    pub fn budget_expired(&self, layer: BudgetLayer, kind: hilp_budget::BudgetKind, spent: u64) {
        if self.inner.is_some() {
            self.incr(if kind == hilp_budget::BudgetKind::Cancelled {
                Counter::BudgetCancellations
            } else {
                Counter::BudgetExpiries
            });
            self.push(EventKind::Budget, layer.to_u64(), kind.to_u64(), spent);
        }
    }

    /// Records that a progress message was emitted.
    #[inline]
    pub fn progress(&self) {
        if self.inner.is_some() {
            self.incr(Counter::ProgressMessages);
            self.push(EventKind::Progress, 0, 0, 0);
        }
    }

    /// Drains the ring and counters into a [`Journal`] (non-destructive
    /// snapshot). Span-name ids are resolved to their strings. Counters
    /// with value zero are omitted. Returns an empty journal when
    /// disabled.
    #[must_use]
    pub fn journal(&self) -> Journal {
        let Some(inner) = &self.inner else {
            return Journal::default();
        };
        let names: Vec<&'static str> = inner
            .span_names
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let snap = inner.ring.snapshot();
        let mut records = Vec::with_capacity(snap.events.len() + Counter::ALL.len() + 1);
        for ev in &snap.events {
            if let Some(record) = Record::from_event(ev, &names) {
                records.push(record);
            }
        }
        for (counter, value) in self.counters() {
            if value > 0 {
                records.push(Record::Counter {
                    name: counter.name().to_string(),
                    value,
                });
            }
        }
        if snap.dropped > 0 {
            records.push(Record::Dropped {
                count: snap.dropped,
            });
        }
        Journal { records }
    }
}

impl Inner {
    /// Interns a span name, returning its dense id.
    fn intern(&self, name: &'static str) -> u32 {
        let mut names = self
            .span_names
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(idx) = names
            .iter()
            .position(|n| std::ptr::eq(*n, name) || *n == name)
        {
            return u32::try_from(idx).unwrap_or(0);
        }
        names.push(name);
        u32::try_from(names.len() - 1).unwrap_or(0)
    }
}

/// Guard returned by [`Telemetry::span`]: records the span's event when
/// dropped.
pub struct Span<'a> {
    inner: Option<&'a Inner>,
    name_id: u32,
    start_us: u64,
    depth: u32,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner else { return };
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end_us = u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        inner.ring.push(&Event {
            t_us: end_us,
            kind: EventKind::Span,
            thread: current_thread_id(),
            a: u64::from(self.name_id) | (u64::from(self.depth) << 32),
            b: self.start_us,
            c: end_us.saturating_sub(self.start_us),
        });
    }
}

/// Opens a span on a [`Telemetry`] handle that lasts until the end of
/// the enclosing block.
///
/// ```
/// use hilp_telemetry::{span, Telemetry};
///
/// let tel = Telemetry::enabled();
/// {
///     span!(tel, "bnb.node");
///     // ... timed work ...
/// }
/// assert_eq!(tel.journal().records.len(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        let _hilp_telemetry_span = $tel.span($name);
    };
}

/// Progress reporting that replaces ad-hoc `eprintln!` in the CLIs:
/// messages go to stderr unless `--quiet`, and are always recorded on
/// the telemetry handle (as a counter plus ring event) so traced runs
/// keep a record of what was reported.
#[derive(Clone)]
pub struct Reporter {
    quiet: bool,
    telemetry: Telemetry,
}

impl Reporter {
    /// A reporter that prints to stderr unless `quiet`, recording every
    /// message on `telemetry` (which may be disabled).
    #[must_use]
    pub fn new(quiet: bool, telemetry: &Telemetry) -> Self {
        Reporter {
            quiet,
            telemetry: telemetry.clone(),
        }
    }

    /// Whether messages are suppressed on stderr.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Emits one progress message.
    pub fn say(&self, msg: &str) {
        self.telemetry.progress();
        if !self.quiet {
            eprintln!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.incr(Counter::BnbNodes);
        tel.incumbent(IncumbentSource::Bnb, 1, 5.0);
        {
            let _span = tel.span("noop");
        }
        assert_eq!(tel.counter(Counter::BnbNodes), 0);
        assert!(tel.journal().records.is_empty());
    }

    #[test]
    fn telemetry_compares_equal_regardless_of_state() {
        let off = Telemetry::disabled();
        let on = Telemetry::enabled();
        on.incr(Counter::BnbNodes);
        assert_eq!(off, on);
        assert_eq!(Telemetry::default(), on);
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        tel.add(Counter::SimplexPivots, 3);
        clone.add(Counter::SimplexPivots, 4);
        assert_eq!(tel.counter(Counter::SimplexPivots), 7);
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("outer");
            let _inner = tel.span("inner");
        }
        let journal = tel.journal();
        let spans: Vec<_> = journal
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Span { name, depth, .. } => Some((name.clone(), *depth)),
                _ => None,
            })
            .collect();
        // Inner drops (and records) first.
        assert_eq!(
            spans,
            vec![("inner".to_string(), 1), ("outer".to_string(), 0)]
        );
    }

    #[test]
    fn span_macro_times_the_enclosing_block() {
        let tel = Telemetry::enabled();
        {
            span!(tel, "macro.block");
            tel.incr(Counter::BnbNodes);
        }
        let journal = tel.journal();
        assert!(journal
            .records
            .iter()
            .any(|r| matches!(r, Record::Span { name, .. } if name == "macro.block")));
    }

    #[test]
    fn counter_names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert!(names.iter().all(|n| n.contains('.')));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn value_events_round_trip_f64() {
        let tel = Telemetry::enabled();
        tel.incumbent(IncumbentSource::Milp, 7, 1.25);
        tel.bound(BoundSource::Proved, 7, -3.5);
        tel.prune(PruneReason::Budget, 8, 9.0);
        let journal = tel.journal();
        assert!(matches!(
            journal.records[0],
            Record::Incumbent { node: 7, value, .. } if (value - 1.25).abs() < 1e-12
        ));
        assert!(matches!(
            journal.records[1],
            Record::Bound { value, .. } if (value + 3.5).abs() < 1e-12
        ));
        assert!(matches!(
            journal.records[2],
            Record::Prune { bound, .. } if (bound - 9.0).abs() < 1e-12
        ));
    }

    #[test]
    fn budget_events_record_layer_kind_and_counters() {
        let tel = Telemetry::enabled();
        tel.budget_expired(BudgetLayer::Bnb, BudgetKind::Nodes, 500);
        tel.budget_expired(BudgetLayer::Sweep, BudgetKind::Cancelled, 3);
        assert_eq!(tel.counter(Counter::BudgetExpiries), 1);
        assert_eq!(tel.counter(Counter::BudgetCancellations), 1);
        let journal = tel.journal();
        assert!(matches!(
            journal.records[0],
            Record::Budget {
                layer: BudgetLayer::Bnb,
                kind: BudgetKind::Nodes,
                spent: 500,
                ..
            }
        ));
        assert!(matches!(
            journal.records[1],
            Record::Budget {
                layer: BudgetLayer::Sweep,
                kind: BudgetKind::Cancelled,
                ..
            }
        ));
    }

    #[test]
    fn reporter_records_progress_messages() {
        let tel = Telemetry::enabled();
        let rep = Reporter::new(true, &tel);
        rep.say("working...");
        rep.say("still working...");
        assert_eq!(tel.counter(Counter::ProgressMessages), 2);
        assert!(rep.is_quiet());
    }
}
