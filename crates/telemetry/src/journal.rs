//! The JSONL search-trace journal: typed records drained from a
//! [`crate::Telemetry`] handle, serialized one JSON object per line.
//!
//! The schema is deliberately flat (string and number fields only) so
//! the zero-dependency writer and parser below stay trivial. Every
//! record carries a `"type"` tag; timestamps are microseconds on the
//! handle's monotonic clock. See `DESIGN.md` §9 for the full schema
//! and a worked example.

use crate::ring::{Event, EventKind};
use crate::{BoundSource, BudgetLayer, IncumbentSource, PruneReason};
use hilp_budget::BudgetKind;
use std::fmt::Write as _;
use std::path::Path;

/// One journal record. See each variant for its JSON shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span:
    /// `{"type":"span","name":"dse.point","thread":2,"depth":1,"start_us":10,"dur_us":950}`
    Span {
        /// Interned span name (e.g. `sched.bnb`).
        name: String,
        /// Emitting thread id.
        thread: u32,
        /// Nesting depth on that thread (0 = outermost).
        depth: u32,
        /// Start time, µs on the handle's monotonic clock.
        start_us: u64,
        /// Duration in µs.
        dur_us: u64,
    },
    /// A new incumbent:
    /// `{"type":"incumbent","t_us":512,"thread":0,"source":"bnb","node":17,"value":7}`
    Incumbent {
        /// Event time in µs.
        t_us: u64,
        /// Emitting thread id.
        thread: u32,
        /// Which search phase found it.
        source: IncumbentSource,
        /// Search-node id (0 outside a tree search).
        node: u64,
        /// Objective value (makespan in steps for scheduling solves).
        value: f64,
    },
    /// A proven lower bound:
    /// `{"type":"bound","t_us":3,"thread":0,"source":"combinatorial","node":0,"value":5}`
    Bound {
        /// Event time in µs.
        t_us: u64,
        /// Emitting thread id.
        thread: u32,
        /// Where the bound came from.
        source: BoundSource,
        /// Search-node id (0 outside a tree search).
        node: u64,
        /// Bound value.
        value: f64,
    },
    /// A pruned subtree:
    /// `{"type":"prune","t_us":40,"thread":0,"reason":"bound","node":23,"bound":9}`
    Prune {
        /// Event time in µs.
        t_us: u64,
        /// Emitting thread id.
        thread: u32,
        /// Why the subtree was cut.
        reason: PruneReason,
        /// Search-node id.
        node: u64,
        /// The bound that justified the cut.
        bound: f64,
    },
    /// A refinement level solved during a sweep:
    /// `{"type":"level","t_us":88,"thread":1,"point":12,"level":2,"makespan":38}`
    Level {
        /// Event time in µs.
        t_us: u64,
        /// Emitting thread id.
        thread: u32,
        /// Design-point index within the sweep.
        point: u64,
        /// Refinement level number (0 = coarsest).
        level: u64,
        /// Level makespan in time steps.
        makespan: u64,
    },
    /// A budget expired or a cancellation was observed:
    /// `{"type":"budget","t_us":70,"thread":0,"layer":"bnb","kind":"nodes","spent":20000}`
    Budget {
        /// Event time in µs.
        t_us: u64,
        /// Emitting thread id.
        thread: u32,
        /// Which solver layer observed the expiry.
        layer: BudgetLayer,
        /// Which budget constraint tripped.
        kind: BudgetKind,
        /// Work units spent when the budget tripped.
        spent: u64,
    },
    /// A progress message was emitted:
    /// `{"type":"progress","t_us":100,"thread":0}`
    Progress {
        /// Event time in µs.
        t_us: u64,
        /// Emitting thread id.
        thread: u32,
    },
    /// A server job lifecycle event (the journal schema doubles as the
    /// `hilpd` wire format — see `hilp-server`):
    /// `{"type":"job","t_us":10,"event":"accepted","id":3,"tenant":"alice","points":372,"replayed":0,"truncated":0,"degraded":0,"seconds":0,"detail":""}`
    Job {
        /// Event time in µs on the emitting handle's clock.
        t_us: u64,
        /// Lifecycle event tag: `accepted`, `finished`, `rejected`,
        /// `cancelled`, `failed`, `stats`, `pong`, or `shutdown`.
        /// Terminal tags (everything except `accepted`) end a server
        /// response stream.
        event: String,
        /// Server-assigned job id (0 for connection-level responses).
        id: u64,
        /// Tenant the job belongs to (empty for connection-level
        /// responses).
        tenant: String,
        /// Design points in the job (0 until known).
        points: u64,
        /// Points answered by baseline identity replay.
        replayed: u64,
        /// Points whose solve a budget cut short.
        truncated: u64,
        /// 1 when the executing sweep ran with degraded capacity (the
        /// worker-count fallback fired), else 0.
        degraded: u64,
        /// Wall-clock seconds the job took (0 until finished).
        seconds: f64,
        /// Free-form detail: rejection reason, error text, or empty.
        detail: String,
    },
    /// One completed design point of a server job, streamed as it lands
    /// (same wire role as [`Record::Job`]):
    /// `{"type":"point","t_us":52,"job":3,"index":12,"label":"(c4,g16,d2^16)","makespan_seconds":1213.5,"energy_joules":8123.4,"speedup":3.2,"avg_wlp":1.41,"gap":0.01,"seconds":0.02,"truncated":"","replayed":0,"cached":1}`
    Point {
        /// Event time in µs on the emitting handle's clock.
        t_us: u64,
        /// Server job id the point belongs to.
        job: u64,
        /// Design-point index within the job's input order.
        index: u64,
        /// The SoC's `(c,g,d)` label.
        label: String,
        /// Predicted workload execution time (s).
        makespan_seconds: f64,
        /// Energy of the predicted schedule (J); 0 when parsed from a
        /// journal written before the field existed.
        energy_joules: f64,
        /// Predicted speedup over sequential single-core execution.
        speedup: f64,
        /// Average WLP of the predicted schedule.
        avg_wlp: f64,
        /// Optimality gap of the underlying solve.
        gap: f64,
        /// Wall-clock seconds spent solving this point.
        seconds: f64,
        /// Budget-kind tag (`nodes`/`deadline`/`cancelled`) when the
        /// point's solve was cut short, else empty.
        truncated: String,
        /// 1 when the point was answered by baseline identity replay.
        replayed: u64,
        /// 1 when the point was answered from the memoization cache.
        cached: u64,
    },
    /// Final counter value: `{"type":"counter","name":"bnb.nodes","value":123}`
    Counter {
        /// Counter name (see [`crate::Counter::name`]).
        name: String,
        /// Final value.
        value: u64,
    },
    /// Events lost to ring overflow: `{"type":"dropped","count":42}`
    Dropped {
        /// How many events were overwritten before the drain.
        count: u64,
    },
}

impl Record {
    /// Decodes a ring event, resolving span-name ids against the
    /// interned `names` table. Returns `None` for a name id the table
    /// does not know (only possible for torn rings).
    pub(crate) fn from_event(ev: &Event, names: &[&'static str]) -> Option<Record> {
        Some(match ev.kind {
            EventKind::Span => {
                #[allow(clippy::cast_possible_truncation)]
                let name_id = (ev.a & 0xffff_ffff) as usize;
                #[allow(clippy::cast_possible_truncation)]
                let depth = (ev.a >> 32) as u32;
                Record::Span {
                    name: (*names.get(name_id)?).to_string(),
                    thread: ev.thread,
                    depth,
                    start_us: ev.b,
                    dur_us: ev.c,
                }
            }
            EventKind::Incumbent => Record::Incumbent {
                t_us: ev.t_us,
                thread: ev.thread,
                source: IncumbentSource::from_u64(ev.a)?,
                node: ev.b,
                value: f64::from_bits(ev.c),
            },
            EventKind::Bound => Record::Bound {
                t_us: ev.t_us,
                thread: ev.thread,
                source: BoundSource::from_u64(ev.a)?,
                node: ev.b,
                value: f64::from_bits(ev.c),
            },
            EventKind::Prune => Record::Prune {
                t_us: ev.t_us,
                thread: ev.thread,
                reason: PruneReason::from_u64(ev.a)?,
                node: ev.b,
                bound: f64::from_bits(ev.c),
            },
            EventKind::Level => Record::Level {
                t_us: ev.t_us,
                thread: ev.thread,
                point: ev.a,
                level: ev.b,
                makespan: ev.c,
            },
            EventKind::Progress => Record::Progress {
                t_us: ev.t_us,
                thread: ev.thread,
            },
            EventKind::Budget => Record::Budget {
                t_us: ev.t_us,
                thread: ev.thread,
                layer: BudgetLayer::from_u64(ev.a)?,
                kind: BudgetKind::from_u64(ev.b)?,
                spent: ev.c,
            },
        })
    }

    /// Parses one JSON journal line — the inverse of
    /// [`Record::to_json`]. This is the wire-record parser `hilp-server`
    /// clients use on streamed responses.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn parse(line: &str) -> Result<Record, String> {
        parse_record(line)
    }

    /// Serializes the record as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            Record::Span {
                name,
                thread,
                depth,
                start_us,
                dur_us,
            } => {
                s.push_str("{\"type\":\"span\",\"name\":");
                push_json_string(&mut s, name);
                let _ = write!(
                    s,
                    ",\"thread\":{thread},\"depth\":{depth},\"start_us\":{start_us},\"dur_us\":{dur_us}}}"
                );
            }
            Record::Incumbent {
                t_us,
                thread,
                source,
                node,
                value,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"incumbent\",\"t_us\":{t_us},\"thread\":{thread},\"source\":\"{}\",\"node\":{node},\"value\":{}}}",
                    source.as_str(),
                    fmt_f64(*value)
                );
            }
            Record::Bound {
                t_us,
                thread,
                source,
                node,
                value,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"bound\",\"t_us\":{t_us},\"thread\":{thread},\"source\":\"{}\",\"node\":{node},\"value\":{}}}",
                    source.as_str(),
                    fmt_f64(*value)
                );
            }
            Record::Prune {
                t_us,
                thread,
                reason,
                node,
                bound,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"prune\",\"t_us\":{t_us},\"thread\":{thread},\"reason\":\"{}\",\"node\":{node},\"bound\":{}}}",
                    reason.as_str(),
                    fmt_f64(*bound)
                );
            }
            Record::Level {
                t_us,
                thread,
                point,
                level,
                makespan,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"level\",\"t_us\":{t_us},\"thread\":{thread},\"point\":{point},\"level\":{level},\"makespan\":{makespan}}}"
                );
            }
            Record::Budget {
                t_us,
                thread,
                layer,
                kind,
                spent,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"budget\",\"t_us\":{t_us},\"thread\":{thread},\"layer\":\"{}\",\"kind\":\"{}\",\"spent\":{spent}}}",
                    layer.as_str(),
                    kind.as_str()
                );
            }
            Record::Progress { t_us, thread } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"progress\",\"t_us\":{t_us},\"thread\":{thread}}}"
                );
            }
            Record::Job {
                t_us,
                event,
                id,
                tenant,
                points,
                replayed,
                truncated,
                degraded,
                seconds,
                detail,
            } => {
                let _ = write!(s, "{{\"type\":\"job\",\"t_us\":{t_us},\"event\":");
                push_json_string(&mut s, event);
                let _ = write!(s, ",\"id\":{id},\"tenant\":");
                push_json_string(&mut s, tenant);
                let _ = write!(
                    s,
                    ",\"points\":{points},\"replayed\":{replayed},\"truncated\":{truncated},\"degraded\":{degraded},\"seconds\":{},\"detail\":",
                    fmt_f64(*seconds)
                );
                push_json_string(&mut s, detail);
                s.push('}');
            }
            Record::Point {
                t_us,
                job,
                index,
                label,
                makespan_seconds,
                energy_joules,
                speedup,
                avg_wlp,
                gap,
                seconds,
                truncated,
                replayed,
                cached,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"point\",\"t_us\":{t_us},\"job\":{job},\"index\":{index},\"label\":"
                );
                push_json_string(&mut s, label);
                let _ = write!(
                    s,
                    ",\"makespan_seconds\":{},\"energy_joules\":{},\"speedup\":{},\"avg_wlp\":{},\"gap\":{},\"seconds\":{},\"truncated\":",
                    fmt_f64(*makespan_seconds),
                    fmt_f64(*energy_joules),
                    fmt_f64(*speedup),
                    fmt_f64(*avg_wlp),
                    fmt_f64(*gap),
                    fmt_f64(*seconds)
                );
                push_json_string(&mut s, truncated);
                let _ = write!(s, ",\"replayed\":{replayed},\"cached\":{cached}}}");
            }
            Record::Counter { name, value } => {
                s.push_str("{\"type\":\"counter\",\"name\":");
                push_json_string(&mut s, name);
                let _ = write!(s, ",\"value\":{value}}}");
            }
            Record::Dropped { count } => {
                let _ = write!(s, "{{\"type\":\"dropped\",\"count\":{count}}}");
            }
        }
        s
    }
}

/// Formats a finite `f64` so it round-trips through `str::parse` and is
/// a valid JSON number (non-finite values, which the solvers never
/// produce, are clamped to 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string (the writer
/// half of the flat-object wire helpers).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A drained search-trace journal: an ordered list of [`Record`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    /// Records in drain order: ring events first (push order), then
    /// final counter values, then an optional overflow marker.
    pub records: Vec<Record>,
}

impl Journal {
    /// Serializes the journal as JSONL (one record per line, trailing
    /// newline included when non-empty).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the journal as JSONL to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Parses a JSONL journal. Blank lines are skipped; any malformed
    /// line is an error naming its line number.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Journal, String> {
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let record = parse_record(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            records.push(record);
        }
        Ok(Journal { records })
    }

    /// Reads and parses a JSONL journal from `path`.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O failure or the first malformed
    /// line.
    pub fn read_jsonl(path: &Path) -> Result<Journal, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Journal::from_jsonl(&text)
    }
}

// ---------------------------------------------------------------------
// Minimal flat-object JSON parsing (string and number values only).
// Public, because the journal schema doubles as the `hilpd` wire format
// and the server/client need to parse request lines with the same
// zero-dependency machinery.
// ---------------------------------------------------------------------

/// A value in a flat JSON object: the journal (and the `hilpd` wire
/// protocol built on it) restricts itself to string and number fields so
/// this is the entire value universe.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number.
    Num(f64),
}

fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".to_string());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => JsonValue::Num(parse_number(&mut chars)?),
            other => return Err(format!("unsupported value start {other:?}")),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".to_string());
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn parse_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<f64, String> {
    let mut text = String::new();
    while chars
        .peek()
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        text.push(chars.next().unwrap());
    }
    text.parse::<f64>()
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

/// A parsed flat JSON object: ordered `(key, value)` pairs with typed
/// accessors. This is the parser half of the wire helpers shared by the
/// journal reader and the `hilpd` request protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct Fields(Vec<(String, JsonValue)>);

impl Fields {
    /// Parses one flat JSON object (string/number values only).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse(line: &str) -> Result<Fields, String> {
        parse_flat_object(line).map(Fields)
    }

    /// The string value of `key`, if present and a string.
    #[must_use]
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, JsonValue::Str(s))) => Some(s),
            _ => None,
        }
    }

    /// The numeric value of `key`, if present and a number.
    #[must_use]
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, JsonValue::Num(n))) => Some(*n),
            _ => None,
        }
    }

    /// The string value of `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a string.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, JsonValue::Str(s))) => Ok(s),
            Some(_) => Err(format!("field {key:?} is not a string")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    /// The numeric value of `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a number.
    pub fn num(&self, key: &str) -> Result<f64, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, JsonValue::Num(n))) => Ok(*n),
            Some(_) => Err(format!("field {key:?} is not a number")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    /// The value of `key` as a non-negative integer.
    ///
    /// # Errors
    ///
    /// When the field is missing, not a number, negative, or fractional.
    pub fn u64(&self, key: &str) -> Result<u64, String> {
        let n = self.num(key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("field {key:?} is not a non-negative integer"));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Ok(n as u64)
    }

    /// The value of `key` as a `u32`.
    ///
    /// # Errors
    ///
    /// When the field is missing, not an integer, or overflows.
    pub fn u32(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.u64(key)?).map_err(|_| format!("field {key:?} overflows u32"))
    }
}

fn parse_record(line: &str) -> Result<Record, String> {
    let fields = Fields(parse_flat_object(line)?);
    let ty = fields.str("type")?.to_string();
    match ty.as_str() {
        "span" => Ok(Record::Span {
            name: fields.str("name")?.to_string(),
            thread: fields.u32("thread")?,
            depth: fields.u32("depth")?,
            start_us: fields.u64("start_us")?,
            dur_us: fields.u64("dur_us")?,
        }),
        "incumbent" => Ok(Record::Incumbent {
            t_us: fields.u64("t_us")?,
            thread: fields.u32("thread")?,
            source: IncumbentSource::from_str_tag(fields.str("source")?)
                .ok_or_else(|| format!("unknown incumbent source {:?}", fields.str("source")))?,
            node: fields.u64("node")?,
            value: fields.num("value")?,
        }),
        "bound" => Ok(Record::Bound {
            t_us: fields.u64("t_us")?,
            thread: fields.u32("thread")?,
            source: BoundSource::from_str_tag(fields.str("source")?)
                .ok_or_else(|| format!("unknown bound source {:?}", fields.str("source")))?,
            node: fields.u64("node")?,
            value: fields.num("value")?,
        }),
        "prune" => Ok(Record::Prune {
            t_us: fields.u64("t_us")?,
            thread: fields.u32("thread")?,
            reason: PruneReason::from_str_tag(fields.str("reason")?)
                .ok_or_else(|| format!("unknown prune reason {:?}", fields.str("reason")))?,
            node: fields.u64("node")?,
            bound: fields.num("bound")?,
        }),
        "level" => Ok(Record::Level {
            t_us: fields.u64("t_us")?,
            thread: fields.u32("thread")?,
            point: fields.u64("point")?,
            level: fields.u64("level")?,
            makespan: fields.u64("makespan")?,
        }),
        "budget" => Ok(Record::Budget {
            t_us: fields.u64("t_us")?,
            thread: fields.u32("thread")?,
            layer: BudgetLayer::from_str_tag(fields.str("layer")?)
                .ok_or_else(|| format!("unknown budget layer {:?}", fields.str("layer")))?,
            kind: BudgetKind::from_str_tag(fields.str("kind")?)
                .ok_or_else(|| format!("unknown budget kind {:?}", fields.str("kind")))?,
            spent: fields.u64("spent")?,
        }),
        "progress" => Ok(Record::Progress {
            t_us: fields.u64("t_us")?,
            thread: fields.u32("thread")?,
        }),
        "job" => Ok(Record::Job {
            t_us: fields.u64("t_us")?,
            event: fields.str("event")?.to_string(),
            id: fields.u64("id")?,
            tenant: fields.str("tenant")?.to_string(),
            points: fields.u64("points")?,
            replayed: fields.u64("replayed")?,
            truncated: fields.u64("truncated")?,
            degraded: fields.u64("degraded")?,
            seconds: fields.num("seconds")?,
            detail: fields.str("detail")?.to_string(),
        }),
        "point" => Ok(Record::Point {
            t_us: fields.u64("t_us")?,
            job: fields.u64("job")?,
            index: fields.u64("index")?,
            label: fields.str("label")?.to_string(),
            makespan_seconds: fields.num("makespan_seconds")?,
            // Absent in journals written before energy accounting landed;
            // parse those as 0 rather than rejecting the record.
            energy_joules: fields.num("energy_joules").unwrap_or(0.0),
            speedup: fields.num("speedup")?,
            avg_wlp: fields.num("avg_wlp")?,
            gap: fields.num("gap")?,
            seconds: fields.num("seconds")?,
            truncated: fields.str("truncated")?.to_string(),
            replayed: fields.u64("replayed")?,
            cached: fields.u64("cached")?,
        }),
        "counter" => Ok(Record::Counter {
            name: fields.str("name")?.to_string(),
            value: fields.u64("value")?,
        }),
        "dropped" => Ok(Record::Dropped {
            count: fields.u64("count")?,
        }),
        other => Err(format!("unknown record type {other:?}")),
    }
}

/// Checks that a journal drained from a *single solve* replays to
/// consistent monotone incumbent/bound sequences:
///
/// 1. incumbent values never increase (each one improves on the last),
/// 2. `combinatorial`/`proved` bound values never decrease (knowledge
///    only tightens; `external` bounds are excluded because a
///    dominator's inherited bound may be weaker than this instance's
///    own), and
/// 3. every bound is at most the final incumbent (bounds stay sound).
///
/// Journals covering several independent solves (a sweep) interleave
/// unrelated sequences and cannot be checked this way.
///
/// # Errors
///
/// Returns a description of the first inconsistency.
pub fn check_single_solve_replay(journal: &Journal) -> Result<(), String> {
    let mut last_incumbent: Option<f64> = None;
    let mut last_proved: Option<f64> = None;
    let mut bounds = Vec::new();
    for (i, record) in journal.records.iter().enumerate() {
        match record {
            Record::Incumbent { value, .. } => {
                if last_incumbent.is_some_and(|prev| *value > prev + 1e-9) {
                    return Err(format!(
                        "record {i}: incumbent rose from {} to {value}",
                        last_incumbent.unwrap_or(f64::NAN)
                    ));
                }
                last_incumbent = Some(*value);
            }
            Record::Bound { source, value, .. } => {
                bounds.push(*value);
                if matches!(source, BoundSource::Combinatorial | BoundSource::Proved) {
                    if last_proved.is_some_and(|prev| *value < prev - 1e-9) {
                        return Err(format!(
                            "record {i}: proved bound fell from {} to {value}",
                            last_proved.unwrap_or(f64::NAN)
                        ));
                    }
                    last_proved = Some(*value);
                }
            }
            _ => {}
        }
    }
    if let Some(incumbent) = last_incumbent {
        if let Some(bad) = bounds.iter().find(|b| **b > incumbent + 1e-9) {
            return Err(format!("bound {bad} exceeds final incumbent {incumbent}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> Journal {
        Journal {
            records: vec![
                Record::Bound {
                    t_us: 1,
                    thread: 0,
                    source: BoundSource::Combinatorial,
                    node: 0,
                    value: 5.0,
                },
                Record::Incumbent {
                    t_us: 2,
                    thread: 0,
                    source: IncumbentSource::Heuristic,
                    node: 0,
                    value: 9.0,
                },
                Record::Prune {
                    t_us: 3,
                    thread: 1,
                    reason: PruneReason::Bound,
                    node: 4,
                    bound: 9.5,
                },
                Record::Incumbent {
                    t_us: 4,
                    thread: 0,
                    source: IncumbentSource::Bnb,
                    node: 7,
                    value: 7.0,
                },
                Record::Bound {
                    t_us: 5,
                    thread: 0,
                    source: BoundSource::Proved,
                    node: 0,
                    value: 7.0,
                },
                Record::Span {
                    name: "sched.bnb".to_string(),
                    thread: 0,
                    depth: 1,
                    start_us: 0,
                    dur_us: 6,
                },
                Record::Level {
                    t_us: 6,
                    thread: 0,
                    point: 3,
                    level: 1,
                    makespan: 7,
                },
                Record::Progress { t_us: 7, thread: 0 },
                Record::Budget {
                    t_us: 8,
                    thread: 0,
                    layer: BudgetLayer::Bnb,
                    kind: BudgetKind::Nodes,
                    spent: 12,
                },
                Record::Job {
                    t_us: 9,
                    event: "finished".to_string(),
                    id: 3,
                    tenant: "alice".to_string(),
                    points: 372,
                    replayed: 370,
                    truncated: 0,
                    degraded: 0,
                    seconds: 0.25,
                    detail: String::new(),
                },
                Record::Point {
                    t_us: 10,
                    job: 3,
                    index: 12,
                    label: "(c4,g16,d2^16)".to_string(),
                    makespan_seconds: 1213.5,
                    energy_joules: 8123.25,
                    speedup: 3.25,
                    avg_wlp: 1.5,
                    gap: 0.0,
                    seconds: 0.02,
                    truncated: String::new(),
                    replayed: 0,
                    cached: 1,
                },
                Record::Counter {
                    name: "bnb.nodes".to_string(),
                    value: 12,
                },
                Record::Dropped { count: 2 },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let journal = sample_journal();
        let text = journal.to_jsonl();
        assert_eq!(text.lines().count(), journal.records.len());
        let parsed = Journal::from_jsonl(&text).unwrap();
        assert_eq!(parsed, journal);
    }

    #[test]
    fn every_line_is_a_flat_json_object() {
        for line in sample_journal().to_jsonl().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
            parse_flat_object(line).unwrap();
        }
    }

    #[test]
    fn string_escaping_round_trips() {
        let journal = Journal {
            records: vec![Record::Counter {
                name: "weird \"name\"\\with\nescapes\u{1}".to_string(),
                value: 1,
            }],
        };
        let parsed = Journal::from_jsonl(&journal.to_jsonl()).unwrap();
        assert_eq!(parsed, journal);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err =
            Journal::from_jsonl("{\"type\":\"dropped\",\"count\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = Journal::from_jsonl("{\"type\":\"mystery\"}\n").unwrap_err();
        assert!(err.contains("unknown record type"), "{err}");
    }

    #[test]
    fn fields_parse_supports_optional_request_fields() {
        let fields =
            Fields::parse("{\"type\":\"submit\",\"tenant\":\"alice\",\"threads\":4}").unwrap();
        assert_eq!(fields.str("type").unwrap(), "submit");
        assert_eq!(fields.get_str("tenant"), Some("alice"));
        assert_eq!(fields.get_num("threads"), Some(4.0));
        assert_eq!(fields.get_str("spec"), None);
        assert_eq!(fields.get_num("tenant"), None);
        assert!(fields.u64("missing").is_err());
        assert!(Fields::parse("not json").is_err());
    }

    #[test]
    fn replay_check_accepts_consistent_journals() {
        check_single_solve_replay(&sample_journal()).unwrap();
    }

    #[test]
    fn replay_check_rejects_rising_incumbents() {
        let mut journal = sample_journal();
        journal.records.push(Record::Incumbent {
            t_us: 9,
            thread: 0,
            source: IncumbentSource::Bnb,
            node: 9,
            value: 8.0,
        });
        assert!(check_single_solve_replay(&journal)
            .unwrap_err()
            .contains("incumbent rose"));
    }

    #[test]
    fn replay_check_rejects_falling_proved_bounds() {
        let mut journal = sample_journal();
        journal.records.push(Record::Bound {
            t_us: 9,
            thread: 0,
            source: BoundSource::Proved,
            node: 0,
            value: 3.0,
        });
        assert!(check_single_solve_replay(&journal)
            .unwrap_err()
            .contains("proved bound fell"));
    }

    #[test]
    fn replay_check_rejects_unsound_bounds() {
        let mut journal = sample_journal();
        // An external bound above the final incumbent is unsound even
        // though external bounds are exempt from monotonicity.
        journal.records.insert(
            0,
            Record::Bound {
                t_us: 0,
                thread: 0,
                source: BoundSource::External,
                node: 0,
                value: 20.0,
            },
        );
        assert!(check_single_solve_replay(&journal)
            .unwrap_err()
            .contains("exceeds final incumbent"));
    }

    #[test]
    fn external_bounds_are_exempt_from_monotonicity() {
        let journal = Journal {
            records: vec![
                Record::Bound {
                    t_us: 0,
                    thread: 0,
                    source: BoundSource::Combinatorial,
                    node: 0,
                    value: 5.0,
                },
                // Weaker inherited bound: allowed.
                Record::Bound {
                    t_us: 1,
                    thread: 0,
                    source: BoundSource::External,
                    node: 0,
                    value: 3.0,
                },
                Record::Bound {
                    t_us: 2,
                    thread: 0,
                    source: BoundSource::Proved,
                    node: 0,
                    value: 5.0,
                },
            ],
        };
        check_single_solve_replay(&journal).unwrap();
    }
}
