//! Depth-first LP-relaxation branch and bound.

use std::time::Instant;

use hilp_budget::BudgetKind;
use hilp_lp::{LinearProgram, LpError, Objective, Status, VariableId};
use hilp_telemetry::{BoundSource, BudgetLayer, Counter, IncumbentSource, PruneReason};

use crate::{MilpError, MilpSolution, MilpStatus, SolveLimits, INTEGRALITY_TOLERANCE};

/// A branch-and-bound node: bound overrides relative to the root program
/// plus the parent's relaxation value (a valid bound for the subtree).
#[derive(Debug, Clone)]
struct Node {
    overrides: Vec<(usize, f64, f64)>,
    parent_bound: f64,
}

/// Converts an objective value to "minimization sense" so comparisons are
/// uniform: smaller is always better.
fn to_min(sense: Objective, value: f64) -> f64 {
    match sense {
        Objective::Minimize => value,
        Objective::Maximize => -value,
    }
}

fn from_min(sense: Objective, value: f64) -> f64 {
    match sense {
        Objective::Minimize => value,
        Objective::Maximize => -value,
    }
}

fn most_fractional(values: &[f64], integer: &[bool]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    let mut best_dist = INTEGRALITY_TOLERANCE;
    for (j, (&v, &is_int)) in values.iter().zip(integer).enumerate() {
        if !is_int {
            continue;
        }
        let frac = v - v.floor();
        let dist = frac.min(1.0 - frac);
        if dist > best_dist {
            best_dist = dist;
            best = Some((j, v));
        }
    }
    best
}

pub(crate) fn branch_and_bound(
    root: &LinearProgram,
    integer: &[bool],
    limits: &SolveLimits,
) -> Result<MilpSolution, MilpError> {
    let sense = root.objective();
    let start = Instant::now();
    // Observational telemetry; incumbent/bound event values are recorded
    // in minimization sense so they replay monotonically.
    let tel = &limits.telemetry;
    let _bnb_span = tel.span("milp.bnb");

    let mut incumbent: Option<(Vec<f64>, f64)> = None; // values, min-sense objective
    let mut nodes_explored = 0usize;
    // Minimum (min-sense) relaxation bound over pruned-by-limit subtrees.
    // While every subtree is either fully explored or recorded here, the
    // global proven bound is min(incumbent, open subtree bounds).
    let mut abandoned_bound = f64::INFINITY;

    let mut stack: Vec<Node> = vec![Node {
        overrides: Vec::new(),
        parent_bound: f64::NEG_INFINITY,
    }];

    let mut limit_hit = false;
    // Which budget dimension stopped the search, once one does (sticky:
    // the unified budget reports the first trip across all layers).
    let mut exhausted_kind: Option<BudgetKind> = None;
    while let Some(node) = stack.pop() {
        let gap_reached = match &incumbent {
            Some((_, inc)) => {
                let bound = node.parent_bound.min(abandoned_bound);
                let denom = inc.abs().max(1e-9);
                bound > f64::NEG_INFINITY && (inc - bound) / denom <= limits.gap_target
            }
            None => false,
        };
        // One node popped = one unit of the unified budget. The charge
        // also observes the deadline (on a stride) and the cancel token.
        // Nodes already covered by the gap target are free: reaching the
        // target is a success, not a truncation.
        if exhausted_kind.is_none() && !gap_reached {
            exhausted_kind = limits.budget.charge(1).err();
        }
        let over_limit = exhausted_kind.is_some()
            || nodes_explored >= limits.max_nodes
            || limits.time_limit.is_some_and(|t| start.elapsed() >= t);
        if over_limit || gap_reached {
            if over_limit {
                limit_hit = true;
            }
            abandoned_bound = abandoned_bound.min(node.parent_bound);
            if over_limit {
                // Drain the rest of the stack into the abandoned bound.
                for rest in stack.drain(..) {
                    abandoned_bound = abandoned_bound.min(rest.parent_bound);
                }
                tel.prune(PruneReason::Budget, nodes_explored as u64, abandoned_bound);
                break;
            }
            continue;
        }

        // Prune by bound before paying for an LP solve.
        if let Some((_, inc)) = &incumbent {
            if node.parent_bound >= *inc - 1e-9 {
                tel.incr(Counter::MilpPrunesBound);
                tel.prune(PruneReason::Bound, nodes_explored as u64, node.parent_bound);
                continue;
            }
        }

        nodes_explored += 1;
        tel.incr(Counter::MilpNodes);
        let mut lp = root.clone();
        let mut infeasible_overrides = false;
        for &(j, lo, hi) in &node.overrides {
            if lo > hi {
                infeasible_overrides = true;
                break;
            }
            lp.set_bounds(VariableId::from_index(j), lo, hi)?;
        }
        if infeasible_overrides {
            continue;
        }
        // Share the budget with the relaxation so a deadline or
        // cancellation also interrupts a long simplex run. The LP layer
        // never charges the node meter.
        lp.set_budget(limits.budget.clone());
        let relax = match lp.solve() {
            Ok(relax) => relax,
            Err(LpError::BudgetExhausted { kind }) => {
                // The budget tripped mid-relaxation: this node's subtree
                // is abandoned like any other unexplored one.
                exhausted_kind = Some(kind);
                limit_hit = true;
                abandoned_bound = abandoned_bound.min(node.parent_bound);
                for rest in stack.drain(..) {
                    abandoned_bound = abandoned_bound.min(rest.parent_bound);
                }
                tel.prune(PruneReason::Budget, nodes_explored as u64, abandoned_bound);
                break;
            }
            Err(e) => return Err(e.into()),
        };
        tel.add(Counter::SimplexPivots, relax.pivots());
        match relax.status() {
            Status::Infeasible => {
                tel.incr(Counter::MilpPrunesInfeasible);
                tel.prune(
                    PruneReason::Infeasible,
                    nodes_explored as u64,
                    node.parent_bound,
                );
                continue;
            }
            Status::Unbounded => {
                if node.overrides.is_empty() {
                    return Err(MilpError::UnboundedRelaxation);
                }
                // An unbounded node of a bounded root cannot be pruned by
                // bound; treat conservatively as an abandoned subtree.
                abandoned_bound = f64::NEG_INFINITY;
                continue;
            }
            Status::Optimal => {}
        }
        let relax_obj = to_min(sense, relax.objective_value());
        if let Some((_, inc)) = &incumbent {
            if relax_obj >= *inc - 1e-9 {
                // Pruned: subtree cannot improve the incumbent.
                tel.incr(Counter::MilpPrunesBound);
                tel.prune(PruneReason::Bound, nodes_explored as u64, relax_obj);
                continue;
            }
        }

        match most_fractional(relax.values(), integer) {
            None => {
                // Integral solution: candidate incumbent.
                let better = incumbent
                    .as_ref()
                    .is_none_or(|(_, inc)| relax_obj < *inc - 1e-9);
                if better {
                    incumbent = Some((relax.values().to_vec(), relax_obj));
                    tel.incr(Counter::MilpIncumbents);
                    tel.incumbent(IncumbentSource::Milp, nodes_explored as u64, relax_obj);
                }
            }
            Some((j, v)) => {
                let (root_lo, root_hi) = effective_bounds(root, &node.overrides, j);
                let floor = v.floor();
                // Explore the side closer to the fractional value first by
                // pushing it last (stack is LIFO).
                let down = child(&node, j, root_lo, floor, relax_obj);
                let up = child(&node, j, floor + 1.0, root_hi, relax_obj);
                if v - floor <= 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    // Unify the ad-hoc limits with the budget's vocabulary: any early
    // stop is reported as the budget dimension that caused it.
    if limit_hit && exhausted_kind.is_none() {
        exhausted_kind = Some(if nodes_explored >= limits.max_nodes {
            BudgetKind::Nodes
        } else {
            BudgetKind::Deadline
        });
    }
    if let Some(kind) = exhausted_kind {
        tel.budget_expired(BudgetLayer::Milp, kind, nodes_explored as u64);
    }

    let (status, values, objective, bound) = match incumbent {
        Some((values, inc_min)) => {
            let proven = inc_min.min(abandoned_bound);
            tel.bound(BoundSource::Milp, nodes_explored as u64, proven);
            let denom = inc_min.abs().max(1e-9);
            let gap = (inc_min - proven) / denom;
            // Optimal when either the tree was exhausted within the gap
            // target or the proven bound closes the gap numerically.
            let exhausted =
                !limit_hit && gap <= limits.gap_target + 1e-12 && abandoned_bound >= inc_min;
            let status = if exhausted || gap <= 1e-9 {
                MilpStatus::Optimal
            } else {
                MilpStatus::Feasible
            };
            (
                status,
                values,
                from_min(sense, inc_min),
                from_min(sense, proven),
            )
        }
        None => {
            let status = if limit_hit {
                MilpStatus::Unknown
            } else {
                MilpStatus::Infeasible
            };
            (status, Vec::new(), 0.0, 0.0)
        }
    };
    Ok(
        MilpSolution::new(status, values, objective, bound, nodes_explored)
            .with_exhausted(exhausted_kind),
    )
}

fn child(node: &Node, j: usize, lo: f64, hi: f64, bound: f64) -> Node {
    let mut overrides = node.overrides.clone();
    overrides.push((j, lo, hi));
    Node {
        overrides,
        parent_bound: bound,
    }
}

/// Effective bounds of variable `j` under the node's overrides (later
/// overrides win since `set_bounds` replaces earlier values).
fn effective_bounds(root: &LinearProgram, overrides: &[(usize, f64, f64)], j: usize) -> (f64, f64) {
    let mut bounds = root
        .bounds(VariableId::from_index(j))
        .expect("variable belongs to root");
    for &(k, lo, hi) in overrides {
        if k == j {
            bounds = (lo, hi);
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MilpProblem, SolveLimits};
    use hilp_lp::Relation;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // max 5a + 4b + 3c, 2a + 3b + c <= 5, binary.
        // LP relaxation is fractional (b = 2/3); the integer optimum packs
        // a and b for value 9.
        let mut milp = MilpProblem::new(Objective::Maximize);
        let a = milp.add_binary(5.0);
        let b = milp.add_binary(4.0);
        let c = milp.add_binary(3.0);
        milp.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], Relation::Le, 5.0)
            .unwrap();
        let sol = milp.solve(&SolveLimits::default()).unwrap();
        assert_eq!(sol.status(), MilpStatus::Optimal);
        assert_close(sol.objective_value(), 9.0);
        assert_close(sol.value(a), 1.0);
        assert_close(sol.value(b), 1.0);
        assert_close(sol.value(c), 0.0);
        assert_eq!(sol.gap(), 0.0);
    }

    #[test]
    fn general_integers_are_branched() {
        // max x + y, 2x + y <= 7, x + 3y <= 9; LP opt fractional.
        let mut milp = MilpProblem::new(Objective::Maximize);
        let x = milp.add_integer(1.0);
        let y = milp.add_integer(1.0);
        milp.add_constraint(vec![(x, 2.0), (y, 1.0)], Relation::Le, 7.0)
            .unwrap();
        milp.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 9.0)
            .unwrap();
        let sol = milp.solve(&SolveLimits::default()).unwrap();
        assert_eq!(sol.status(), MilpStatus::Optimal);
        assert_close(sol.objective_value(), 4.0);
        let xv = sol.value(x);
        let yv = sol.value(y);
        assert!((xv - xv.round()).abs() < 1e-6);
        assert!((yv - yv.round()).abs() < 1e-6);
        assert!(2.0 * xv + yv <= 7.0 + 1e-6);
        assert!(xv + 3.0 * yv <= 9.0 + 1e-6);
    }

    #[test]
    fn infeasible_integer_program_is_detected() {
        // 0.4 <= x <= 0.6 with x integer has no solution.
        let mut milp = MilpProblem::new(Objective::Minimize);
        let x = milp.add_integer(1.0);
        milp.set_bounds(x, 0.4, 0.6).unwrap();
        let sol = milp.solve(&SolveLimits::default()).unwrap();
        assert_eq!(sol.status(), MilpStatus::Infeasible);
    }

    #[test]
    fn unbounded_root_is_an_error() {
        let mut milp = MilpProblem::new(Objective::Maximize);
        let _x = milp.add_integer(1.0);
        let err = milp.solve(&SolveLimits::default()).unwrap_err();
        assert_eq!(err, MilpError::UnboundedRelaxation);
    }

    #[test]
    fn node_limit_yields_feasible_with_gap() {
        // A problem needing some branching; with max_nodes = 1 only the root
        // relaxation is solved, so no incumbent can exist unless the root is
        // integral.
        let mut milp = MilpProblem::new(Objective::Maximize);
        let x = milp.add_integer(1.0);
        let y = milp.add_integer(1.0);
        milp.add_constraint(vec![(x, 2.0), (y, 2.0)], Relation::Le, 5.0)
            .unwrap();
        let limits = SolveLimits {
            max_nodes: 1,
            ..SolveLimits::default()
        };
        let sol = milp.solve(&limits).unwrap();
        assert_eq!(sol.status(), MilpStatus::Unknown);
        assert!(sol.gap().is_infinite());
    }

    #[test]
    fn gap_target_stops_early_but_keeps_bound_valid() {
        let mut milp = MilpProblem::new(Objective::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| milp.add_binary(1.0 + (i as f64) * 0.1))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.5)).collect();
        milp.add_constraint(terms, Relation::Le, 6.2).unwrap();
        let limits = SolveLimits {
            gap_target: 0.5,
            ..SolveLimits::default()
        };
        let sol = milp.solve(&limits).unwrap();
        assert!(matches!(
            sol.status(),
            MilpStatus::Optimal | MilpStatus::Feasible
        ));
        // The bound must never be beaten by the true optimum (here <= 5.8).
        assert!(sol.bound() >= sol.objective_value() - 1e-9);
        assert!(sol.gap() <= 0.5 + 1e-9);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // max 3x + 2y with x integer, y continuous, x + y <= 4.5, x <= 3.2.
        let mut milp = MilpProblem::new(Objective::Maximize);
        let x = milp.add_integer(3.0);
        let y = milp.add_continuous(2.0);
        milp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.5)
            .unwrap();
        milp.add_constraint(vec![(x, 1.0)], Relation::Le, 3.2)
            .unwrap();
        let sol = milp.solve(&SolveLimits::default()).unwrap();
        assert_eq!(sol.status(), MilpStatus::Optimal);
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 1.5);
        assert_close(sol.objective_value(), 12.0);
    }
}

#[cfg(test)]
mod limit_tests {
    use crate::{Budget, BudgetKind, CancelToken, MilpProblem, MilpStatus, SolveLimits};
    use hilp_lp::{Objective, Relation};
    use std::time::Duration;

    /// A knapsack big enough to need some branching.
    fn chunky_knapsack() -> MilpProblem {
        let mut milp = MilpProblem::new(Objective::Maximize);
        let vars: Vec<_> = (0..14)
            .map(|i| milp.add_binary(1.0 + f64::from(i % 5) * 0.37))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + f64::from(i as u32 % 3) * 0.9))
            .collect();
        milp.add_constraint(terms, Relation::Le, 11.3).unwrap();
        milp
    }

    #[test]
    fn zero_time_limit_stops_immediately_but_soundly() {
        let milp = chunky_knapsack();
        let limits = SolveLimits {
            time_limit: Some(Duration::ZERO),
            ..SolveLimits::default()
        };
        let sol = milp.solve(&limits).unwrap();
        // No nodes explored: no incumbent can exist.
        assert_eq!(sol.status(), MilpStatus::Unknown);
        assert_eq!(sol.nodes_explored(), 0);
    }

    #[test]
    fn generous_time_limit_still_proves_optimality() {
        let milp = chunky_knapsack();
        let limits = SolveLimits {
            time_limit: Some(Duration::from_secs(30)),
            ..SolveLimits::default()
        };
        let sol = milp.solve(&limits).unwrap();
        assert_eq!(sol.status(), MilpStatus::Optimal);
        assert_eq!(sol.exhausted(), None);
        // Cross-check against the unlimited solve.
        let unlimited = milp.solve(&SolveLimits::default()).unwrap();
        assert!((sol.objective_value() - unlimited.objective_value()).abs() < 1e-9);
    }

    #[test]
    fn legacy_limits_report_the_matching_budget_kind() {
        let milp = chunky_knapsack();
        let node_limited = milp
            .solve(&SolveLimits {
                max_nodes: 1,
                ..SolveLimits::default()
            })
            .unwrap();
        assert_eq!(node_limited.exhausted(), Some(BudgetKind::Nodes));
        let time_limited = milp
            .solve(&SolveLimits {
                time_limit: Some(Duration::ZERO),
                ..SolveLimits::default()
            })
            .unwrap();
        assert_eq!(time_limited.exhausted(), Some(BudgetKind::Deadline));
    }

    #[test]
    fn node_budget_truncates_soundly_with_a_valid_bound() {
        let milp = chunky_knapsack();
        let limits = SolveLimits {
            budget: Budget::nodes(5),
            ..SolveLimits::default()
        };
        let sol = milp.solve(&limits).unwrap();
        assert_eq!(sol.exhausted(), Some(BudgetKind::Nodes));
        assert!(sol.nodes_explored() <= 5);
        let unlimited = milp.solve(&SolveLimits::default()).unwrap();
        if sol.status() == MilpStatus::Feasible {
            // Maximization: bound >= true optimum >= incumbent.
            assert!(sol.bound() >= unlimited.objective_value() - 1e-9);
            assert!(sol.objective_value() <= unlimited.objective_value() + 1e-9);
        }
    }

    #[test]
    fn identical_node_budgets_are_bit_identical() {
        let milp = chunky_knapsack();
        let solve = |n| {
            milp.solve(&SolveLimits {
                budget: Budget::nodes(n),
                ..SolveLimits::default()
            })
            .unwrap()
        };
        assert_eq!(solve(5), solve(5));
    }

    #[test]
    fn cancelled_budget_stops_before_any_node() {
        let token = CancelToken::new();
        token.cancel();
        let milp = chunky_knapsack();
        let limits = SolveLimits {
            budget: Budget::unlimited().with_cancel(token),
            ..SolveLimits::default()
        };
        let sol = milp.solve(&limits).unwrap();
        assert_eq!(sol.status(), MilpStatus::Unknown);
        assert_eq!(sol.nodes_explored(), 0);
        assert_eq!(sol.exhausted(), Some(BudgetKind::Cancelled));
    }

    #[test]
    fn zero_deadline_budget_stops_immediately_but_soundly() {
        let milp = chunky_knapsack();
        let limits = SolveLimits {
            budget: Budget::deadline(Duration::ZERO),
            ..SolveLimits::default()
        };
        let sol = milp.solve(&limits).unwrap();
        assert_eq!(sol.status(), MilpStatus::Unknown);
        assert_eq!(sol.nodes_explored(), 0);
        assert_eq!(sol.exhausted(), Some(BudgetKind::Deadline));
    }

    #[test]
    fn generous_node_budget_still_proves_optimality() {
        let milp = chunky_knapsack();
        let limits = SolveLimits {
            budget: Budget::nodes(1_000_000),
            ..SolveLimits::default()
        };
        let sol = milp.solve(&limits).unwrap();
        assert_eq!(sol.status(), MilpStatus::Optimal);
        assert_eq!(sol.exhausted(), None);
        let unlimited = milp.solve(&SolveLimits::default()).unwrap();
        assert_eq!(sol, unlimited);
    }
}
