//! Mixed-integer linear programming by LP-relaxation branch and bound.
//!
//! `hilp-milp` is the second solver substrate of the HILP reproduction. The
//! paper relies on an off-the-shelf ILP solver (OR-Tools) and on its
//! *optimality bound*: the solver reports both the best schedule found and
//! the best objective value that could still exist in the unexplored part of
//! the solution space, and HILP calls a schedule *near-optimal* when the two
//! are within 10%. This crate provides exactly that contract — an anytime
//! branch-and-bound search that returns an incumbent, a proven bound, and
//! the relative gap between them.
//!
//! It is used for the mixed-integer encodings of small job-shop instances
//! (see `hilp-core`'s disjunctive encoding) and for cross-validating the
//! dedicated scheduling engine in `hilp-sched`.
//!
//! # Example
//!
//! A tiny knapsack: maximize `5a + 4b + 3c` with `2a + 3b + c <= 5`,
//! `a, b, c` binary.
//!
//! ```
//! use hilp_milp::{MilpProblem, MilpStatus, SolveLimits};
//! use hilp_lp::{Objective, Relation};
//!
//! # fn main() -> Result<(), hilp_milp::MilpError> {
//! let mut milp = MilpProblem::new(Objective::Maximize);
//! let a = milp.add_binary(5.0);
//! let b = milp.add_binary(4.0);
//! let c = milp.add_binary(3.0);
//! milp.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], Relation::Le, 5.0)?;
//! let solution = milp.solve(&SolveLimits::default())?;
//! assert_eq!(solution.status(), MilpStatus::Optimal);
//! assert!((solution.objective_value() - 9.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod presolve;
mod solver;

use std::error::Error;
use std::fmt;
use std::time::Duration;

use hilp_lp::{LinearProgram, LpError, Objective, Relation, VariableId};
use hilp_telemetry::Counter;
// Re-exported so callers can configure `SolveLimits::telemetry` without a
// direct hilp-telemetry dependency.
pub use hilp_telemetry::Telemetry;
// Re-exported so callers can configure `SolveLimits::budget` without a
// direct hilp-budget dependency.
pub use hilp_budget::{Budget, BudgetKind, CancelToken};

/// Tolerance within which a value counts as integral.
pub const INTEGRALITY_TOLERANCE: f64 = 1e-6;

/// Errors produced while building or solving a mixed-integer program.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// The underlying LP machinery failed.
    Lp(LpError),
    /// The root relaxation is unbounded, so the integer program is ill-posed
    /// (it is either unbounded or infeasible, and branch and bound cannot
    /// distinguish the two).
    UnboundedRelaxation,
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Lp(e) => write!(f, "lp error: {e}"),
            MilpError::UnboundedRelaxation => write!(f, "root LP relaxation is unbounded"),
        }
    }
}

impl Error for MilpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MilpError::Lp(e) => Some(e),
            MilpError::UnboundedRelaxation => None,
        }
    }
}

impl From<LpError> for MilpError {
    fn from(e: LpError) -> Self {
        MilpError::Lp(e)
    }
}

/// Resource limits for a branch-and-bound solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveLimits {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Stop once the relative gap drops to this value (0.0 proves
    /// optimality; the paper's near-optimality threshold is 0.10).
    pub gap_target: f64,
    /// Run activity-based bound tightening before the search (see
    /// [`presolve::tighten_bounds`]). Off by default: it pays off on
    /// models with general integers and wide boxes, but the binary-heavy
    /// scheduling encodings in this workspace are faster without it.
    pub presolve: bool,
    /// Structured-telemetry handle recording spans, counters (nodes,
    /// prunes, pivots, presolve reductions), and incumbent/bound events.
    /// Disabled by default; strictly observational, so it is ignored by
    /// `PartialEq`.
    pub telemetry: Telemetry,
    /// Unified solve budget: a shared node meter, wall-clock deadline,
    /// and cancellation token checked cooperatively at every
    /// branch-and-bound node (and, for deadline/cancel, inside the LP
    /// pivot loop). Subsumes `max_nodes`/`time_limit`, which remain as
    /// solver-local caps; whichever trips first stops the search.
    /// Unlimited by default.
    pub budget: Budget,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits {
            max_nodes: 200_000,
            time_limit: None,
            gap_target: 0.0,
            presolve: false,
            telemetry: Telemetry::disabled(),
            budget: Budget::unlimited(),
        }
    }
}

impl SolveLimits {
    /// Limits matching the paper's near-optimality criterion: stop as soon
    /// as the incumbent is provably within 10% of optimal.
    #[must_use]
    pub fn near_optimal() -> Self {
        SolveLimits {
            gap_target: 0.10,
            ..SolveLimits::default()
        }
    }
}

/// Termination status of a branch-and-bound solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MilpStatus {
    /// The incumbent is proven optimal (gap is zero up to tolerances).
    Optimal,
    /// A feasible incumbent exists but a limit stopped the search before
    /// optimality was proven; see [`MilpSolution::gap`].
    Feasible,
    /// The program has no feasible assignment.
    Infeasible,
    /// A limit stopped the search before any feasible assignment was found.
    Unknown,
}

/// Result of a branch-and-bound solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    status: MilpStatus,
    values: Vec<f64>,
    objective_value: f64,
    bound: f64,
    nodes_explored: usize,
    exhausted: Option<BudgetKind>,
}

impl MilpSolution {
    pub(crate) fn new(
        status: MilpStatus,
        values: Vec<f64>,
        objective_value: f64,
        bound: f64,
        nodes_explored: usize,
    ) -> Self {
        MilpSolution {
            status,
            values,
            objective_value,
            bound,
            nodes_explored,
            exhausted: None,
        }
    }

    pub(crate) fn with_exhausted(mut self, exhausted: Option<BudgetKind>) -> Self {
        self.exhausted = exhausted;
        self
    }

    /// Termination status.
    #[must_use]
    pub fn status(&self) -> MilpStatus {
        self.status
    }

    /// Value of a variable in the incumbent.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved program or no incumbent
    /// exists.
    #[must_use]
    pub fn value(&self, var: VariableId) -> f64 {
        self.values[var.index()]
    }

    /// All incumbent values indexed by [`VariableId::index`]. Empty when no
    /// incumbent was found.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value of the incumbent.
    #[must_use]
    pub fn objective_value(&self) -> f64 {
        self.objective_value
    }

    /// Best proven objective bound: no feasible assignment can beat this
    /// value (a lower bound when minimizing, an upper bound when
    /// maximizing).
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Relative optimality gap `|incumbent - bound| / max(|incumbent|, eps)`.
    ///
    /// Returns infinity when no incumbent exists.
    #[must_use]
    pub fn gap(&self) -> f64 {
        match self.status {
            MilpStatus::Optimal => 0.0,
            MilpStatus::Feasible => {
                let denom = self.objective_value.abs().max(1e-9);
                (self.objective_value - self.bound).abs() / denom
            }
            MilpStatus::Infeasible | MilpStatus::Unknown => f64::INFINITY,
        }
    }

    /// Number of branch-and-bound nodes explored.
    #[must_use]
    pub fn nodes_explored(&self) -> usize {
        self.nodes_explored
    }

    /// Which limit stopped the search early, if any: `Nodes` when the
    /// node meter (budget or `max_nodes`) ran out, `Deadline` when a
    /// wall-clock limit passed, `Cancelled` when the caller's token
    /// tripped. `None` when the search ran to completion (optimality,
    /// gap target, or infeasibility proven).
    #[must_use]
    pub fn exhausted(&self) -> Option<BudgetKind> {
        self.exhausted
    }
}

/// A linear program extended with integrality requirements on a subset of
/// its variables.
///
/// The builder API mirrors [`LinearProgram`]; integer variables additionally
/// participate in branching during [`MilpProblem::solve`].
#[derive(Debug, Clone)]
pub struct MilpProblem {
    lp: LinearProgram,
    integer: Vec<bool>,
}

impl MilpProblem {
    /// Creates an empty program with the given optimization direction.
    #[must_use]
    pub fn new(objective: Objective) -> Self {
        MilpProblem {
            lp: LinearProgram::new(objective),
            integer: Vec::new(),
        }
    }

    /// Adds a continuous variable with bounds `[0, +inf)`.
    pub fn add_continuous(&mut self, cost: f64) -> VariableId {
        self.integer.push(false);
        self.lp.add_variable(cost)
    }

    /// Adds a general integer variable with bounds `[0, +inf)`.
    pub fn add_integer(&mut self, cost: f64) -> VariableId {
        self.integer.push(true);
        self.lp.add_variable(cost)
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, cost: f64) -> VariableId {
        self.integer.push(true);
        let var = self.lp.add_variable(cost);
        self.lp
            .set_bounds(var, 0.0, 1.0)
            .expect("binary bounds are valid");
        var
    }

    /// Overrides the bounds of a variable; see [`LinearProgram::set_bounds`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying LP builder errors.
    pub fn set_bounds(&mut self, var: VariableId, lower: f64, upper: f64) -> Result<(), MilpError> {
        self.lp.set_bounds(var, lower, upper)?;
        Ok(())
    }

    /// Adds a linear constraint; see [`LinearProgram::add_constraint`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying LP builder errors.
    pub fn add_constraint<I>(
        &mut self,
        terms: I,
        relation: Relation,
        rhs: f64,
    ) -> Result<(), MilpError>
    where
        I: IntoIterator<Item = (VariableId, f64)>,
    {
        self.lp.add_constraint(terms, relation, rhs)?;
        Ok(())
    }

    /// Number of decision variables (continuous and integer).
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.lp.num_variables()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.lp.num_constraints()
    }

    /// Returns whether the variable is required to be integral.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this program.
    #[must_use]
    pub fn is_integer(&self, var: VariableId) -> bool {
        self.integer[var.index()]
    }

    /// Solves the program with LP-relaxation branch and bound.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::UnboundedRelaxation`] when the root relaxation
    /// is unbounded and propagates LP iteration-limit failures.
    pub fn solve(&self, limits: &SolveLimits) -> Result<MilpSolution, MilpError> {
        let tel = &limits.telemetry;
        let _solve_span = tel.span("milp.solve");
        if limits.presolve {
            let mut tightened = self.lp.clone();
            let result = {
                let _presolve_span = tel.span("milp.presolve");
                presolve::tighten_bounds(&mut tightened, &self.integer, 8)
            };
            match result {
                presolve::PresolveResult::Infeasible => {
                    return Ok(MilpSolution::new(
                        MilpStatus::Infeasible,
                        Vec::new(),
                        0.0,
                        0.0,
                        0,
                    ));
                }
                presolve::PresolveResult::Tightened { changes, rounds } => {
                    tel.add(Counter::MilpPresolveRounds, rounds as u64);
                    tel.add(Counter::MilpPresolveTightenings, changes as u64);
                }
            }
            solver::branch_and_bound(&tightened, &self.integer, limits)
        } else {
            solver::branch_and_bound(&self.lp, &self.integer, limits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_integrality() {
        let mut milp = MilpProblem::new(Objective::Minimize);
        let x = milp.add_continuous(1.0);
        let y = milp.add_integer(1.0);
        let z = milp.add_binary(1.0);
        assert!(!milp.is_integer(x));
        assert!(milp.is_integer(y));
        assert!(milp.is_integer(z));
        assert_eq!(milp.num_variables(), 3);
    }

    #[test]
    fn gap_is_zero_for_optimal() {
        let sol = MilpSolution::new(MilpStatus::Optimal, vec![1.0], 3.0, 3.0, 5);
        assert_eq!(sol.gap(), 0.0);
    }

    #[test]
    fn gap_is_relative_for_feasible() {
        let sol = MilpSolution::new(MilpStatus::Feasible, vec![1.0], 10.0, 9.0, 5);
        assert!((sol.gap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gap_is_infinite_without_incumbent() {
        let sol = MilpSolution::new(MilpStatus::Unknown, vec![], 0.0, 0.0, 5);
        assert!(sol.gap().is_infinite());
    }
}
