//! Activity-based presolve: bound tightening before branch and bound.
//!
//! Big-M formulations — exactly what the disjunctive job-shop encoding
//! produces — carry a lot of slack that the LP relaxation cannot see. This
//! presolve iterates the classic *activity* argument to a fixpoint: for a
//! row `sum(a_j x_j) <= b`, every variable must satisfy
//!
//! ```text
//! a_j x_j <= b - min_activity(row without j)
//! ```
//!
//! which tightens `x_j`'s bound whenever the rest of the row cannot take
//! up the slack. Integer variables additionally round their bounds
//! inward. The result is a smaller box (sometimes fixing variables
//! outright) and therefore a tighter relaxation and fewer branch-and-bound
//! nodes — without changing the feasible integer set.

use hilp_lp::{LinearProgram, Relation, RowSnapshot, VariableId};

/// Outcome of a presolve pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresolveResult {
    /// Bounds were (possibly) tightened; the problem may still be feasible.
    Tightened {
        /// Number of individual bound changes applied.
        changes: usize,
        /// Propagation rounds executed (including the final round that
        /// found nothing left to tighten).
        rounds: usize,
    },
    /// A row was proven unsatisfiable within the bounds: the integer
    /// program is infeasible.
    Infeasible,
}

/// Minimum and maximum possible value ("activity") of `coeff * x` given
/// the variable's bounds. Infinite bounds yield infinite activities.
fn term_activity(coeff: f64, lower: f64, upper: f64) -> (f64, f64) {
    let a = coeff * lower;
    let b = coeff * upper;
    (a.min(b), a.max(b))
}

/// Runs activity-based bound tightening to a fixpoint (or `max_rounds`).
///
/// Only `Le` and `Ge` rows participate; equalities are handled as two
/// inequalities. Returns how many bounds changed, or infeasibility.
#[must_use]
pub fn tighten_bounds(
    lp: &mut LinearProgram,
    integer: &[bool],
    max_rounds: usize,
) -> PresolveResult {
    // Snapshot rows once (bounds change; rows do not) and pre-lower every
    // constraint to <= form.
    let rows: Vec<RowSnapshot> = lp.rows_snapshot();
    let mut le_rows: Vec<(f64, Vec<(usize, f64)>)> = Vec::with_capacity(rows.len());
    for (terms, relation, rhs) in rows {
        match relation {
            Relation::Le => le_rows.push((rhs, terms)),
            Relation::Ge => le_rows.push((-rhs, terms.iter().map(|&(j, a)| (j, -a)).collect())),
            Relation::Eq => {
                le_rows.push((-rhs, terms.iter().map(|&(j, a)| (j, -a)).collect()));
                le_rows.push((rhs, terms));
            }
        }
    }

    let mut total_changes = 0usize;
    let mut rounds = 0usize;
    for _ in 0..max_rounds {
        rounds += 1;
        let mut changed_this_round = false;
        {
            for (cap, row) in &le_rows {
                // Minimum activity of the whole row.
                let mut min_total = 0.0f64;
                for &(j, a) in row {
                    let (lo, hi) = lp
                        .bounds(VariableId::from_index(j))
                        .expect("snapshot indices are valid");
                    min_total += term_activity(a, lo, hi).0;
                }
                if min_total > cap + 1e-7 {
                    return PresolveResult::Infeasible;
                }
                // Tighten each variable against the others' min activity.
                for &(j, a) in row {
                    if a.abs() < 1e-12 {
                        continue;
                    }
                    let var = VariableId::from_index(j);
                    let (lo, hi) = lp.bounds(var).expect("valid index");
                    let (own_min, _) = term_activity(a, lo, hi);
                    let others_min = min_total - own_min;
                    if !others_min.is_finite() {
                        continue;
                    }
                    // a * x <= cap - others_min.
                    let limit = (cap - others_min) / a;
                    let (mut new_lo, mut new_hi) = (lo, hi);
                    if a > 0.0 {
                        let mut ub = limit;
                        if integer[j] {
                            ub = (ub + 1e-9).floor();
                        }
                        if ub < new_hi - 1e-9 {
                            new_hi = ub;
                        }
                    } else {
                        let mut lb = limit;
                        if integer[j] {
                            lb = (lb - 1e-9).ceil();
                        }
                        if lb > new_lo + 1e-9 {
                            new_lo = lb;
                        }
                    }
                    if new_lo > new_hi + 1e-9 {
                        return PresolveResult::Infeasible;
                    }
                    if (new_lo, new_hi) != (lo, hi) {
                        // Clamp inverted-by-epsilon boxes.
                        let new_hi = new_hi.max(new_lo);
                        lp.set_bounds(var, new_lo, new_hi)
                            .expect("tightened bounds stay ordered");
                        total_changes += 1;
                        changed_this_round = true;
                    }
                }
            }
        }
        if !changed_this_round {
            break;
        }
    }
    PresolveResult::Tightened {
        changes: total_changes,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilp_lp::Objective;

    #[test]
    fn tightens_upper_bounds_from_a_packing_row() {
        // 2x + 3y <= 6 with x, y in [0, 10]: x <= 3, y <= 2.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.set_bounds(x, 0.0, 10.0).unwrap();
        lp.set_bounds(y, 0.0, 10.0).unwrap();
        lp.add_constraint(vec![(x, 2.0), (y, 3.0)], Relation::Le, 6.0)
            .unwrap();
        let integer = vec![true, true];
        let result = tighten_bounds(&mut lp, &integer, 10);
        assert!(
            matches!(result, PresolveResult::Tightened { changes, rounds } if changes >= 2 && rounds >= 1)
        );
        assert_eq!(lp.bounds(x).unwrap(), (0.0, 3.0));
        assert_eq!(lp.bounds(y).unwrap(), (0.0, 2.0));
    }

    #[test]
    fn integer_rounding_tightens_further() {
        // 2x <= 5 with x integer: x <= 2 (not 2.5).
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(1.0);
        lp.set_bounds(x, 0.0, 10.0).unwrap();
        lp.add_constraint(vec![(x, 2.0)], Relation::Le, 5.0)
            .unwrap();
        let _ = tighten_bounds(&mut lp, &[true], 10);
        assert_eq!(lp.bounds(x).unwrap(), (0.0, 2.0));
    }

    #[test]
    fn ge_rows_raise_lower_bounds() {
        // x + y >= 15 with y <= 10: x >= 5.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.set_bounds(x, 0.0, 100.0).unwrap();
        lp.set_bounds(y, 0.0, 10.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 15.0)
            .unwrap();
        let _ = tighten_bounds(&mut lp, &[false, false], 10);
        let (lo, _) = lp.bounds(x).unwrap();
        assert!((lo - 5.0).abs() < 1e-6);
    }

    #[test]
    fn detects_row_infeasibility() {
        // x <= 1 bounds, but row demands x >= 3.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(1.0);
        lp.set_bounds(x, 0.0, 1.0).unwrap();
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 3.0)
            .unwrap();
        assert_eq!(
            tighten_bounds(&mut lp, &[false], 10),
            PresolveResult::Infeasible
        );
    }

    #[test]
    fn fixpoint_propagates_across_rows() {
        // y <= x and x <= 2 chained: y <= 2 after two rounds.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.set_bounds(x, 0.0, 100.0).unwrap();
        lp.set_bounds(y, 0.0, 100.0).unwrap();
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0)
            .unwrap();
        lp.add_constraint(vec![(y, 1.0), (x, -1.0)], Relation::Le, 0.0)
            .unwrap();
        let _ = tighten_bounds(&mut lp, &[false, false], 10);
        let (_, hi) = lp.bounds(y).unwrap();
        assert!((hi - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equalities_tighten_both_sides() {
        // x + y = 4 with x in [0, 1]: y in [3, 4].
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.set_bounds(x, 0.0, 1.0).unwrap();
        lp.set_bounds(y, 0.0, 100.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 4.0)
            .unwrap();
        let _ = tighten_bounds(&mut lp, &[false, false], 10);
        let (lo, hi) = lp.bounds(y).unwrap();
        assert!((lo - 3.0).abs() < 1e-6);
        assert!((hi - 4.0).abs() < 1e-6);
    }

    #[test]
    fn presolve_preserves_the_optimum() {
        // A small knapsack: presolve then solve must equal plain solve.
        use crate::{MilpProblem, SolveLimits};
        let build = || {
            let mut milp = MilpProblem::new(Objective::Maximize);
            let a = milp.add_binary(5.0);
            let b = milp.add_binary(4.0);
            let c = milp.add_binary(3.0);
            milp.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], Relation::Le, 5.0)
                .unwrap();
            milp
        };
        let plain = build().solve(&SolveLimits::default()).unwrap();
        let presolved = build()
            .solve(&SolveLimits {
                presolve: true,
                ..SolveLimits::default()
            })
            .unwrap();
        assert!((plain.objective_value() - presolved.objective_value()).abs() < 1e-9);
    }
}
