//! Figure 8: power-constrained Pareto fronts and the DSA efficiency
//! advantage sweep.
//!
//! Run with `cargo run --release --example power_constrained [--quick]`.

use hilp_dse::experiments::{fig8a_power_constrained, fig8b_dsa_advantage};
use hilp_dse::plot::{Marker, Plot};
use hilp_dse::{design_space, SweepConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut socs = design_space(4.0);
    if quick {
        socs = socs.into_iter().step_by(6).collect();
        println!("(quick mode: {} SoCs per sweep)\n", socs.len());
    }
    let config = SweepConfig::default();

    println!("== Figure 8a: HILP Pareto fronts under power budgets ==\n");
    let mut plot8a = Plot::new(
        "Figure 8a: power-constrained Pareto fronts",
        "chip area (mm^2)",
        "speedup",
    );
    for (power, result) in fig8a_power_constrained(&socs, &config)? {
        let best = result.best();
        println!(
            "{:>5.0} W budget: best {} at {:.1}x / {:.1} mm^2",
            power, best.label, best.speedup, best.area_mm2
        );
        println!("{}", result.render_front());
        let front: Vec<(f64, f64)> = result
            .front
            .iter()
            .map(|&i| (result.points[i].area_mm2, result.points[i].speedup))
            .collect();
        plot8a.add_series(format!("{power:.0} W"), Marker::Line, front);
    }
    std::fs::create_dir_all("results").ok();
    plot8a.save("results/fig8a_power.svg")?;
    println!("(wrote results/fig8a_power.svg)\n");
    println!(
        "Paper: (c4,g16,d2^16) tops both the 50 W and 600 W budgets; at 20 W \
         the top performer is the scaled-down (c2,g4,d2^4).\n"
    );

    if quick {
        println!("== Figure 8b skipped in quick mode (pass no flag to run) ==");
        return Ok(());
    }

    println!("== Figure 8b: DSA efficiency advantage (600 W) ==\n");
    let mut plot8b = Plot::new(
        "Figure 8b: DSA efficiency advantage",
        "chip area (mm^2)",
        "speedup",
    );
    for (advantage, result) in fig8b_dsa_advantage(&config)? {
        let best = result.best();
        println!(
            "{advantage:>3.0}x advantage: best {} at {:.1}x / {:.1} mm^2 (gpu fraction {:.2})",
            best.label,
            best.speedup,
            best.area_mm2,
            best.gpu_area_fraction.unwrap_or(1.0)
        );
        let front: Vec<(f64, f64)> = result
            .front
            .iter()
            .map(|&i| (result.points[i].area_mm2, result.points[i].speedup))
            .collect();
        plot8b.add_series(format!("{advantage:.0}x"), Marker::Line, front);
    }
    plot8b.save("results/fig8b_advantage.svg")?;
    println!("(wrote results/fig8b_advantage.svg)");
    println!(
        "\nPaper: the optimum moves from a GPU-only SoC at 2x to the mixed \
         (c4,g16,d2^16) at 4x and 8x — workload coverage is king."
    );
    Ok(())
}
