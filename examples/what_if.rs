//! What-if analysis with the compatibility matrix `E_cap` (Section III-B):
//! "it could be used to explore the impact of pinning a phase to a
//! specific DSA compared to no restrictions."
//!
//! Run with `cargo run --release --example what_if`.
//!
//! Three scenarios for the Default workload on a (c4,g16,d2^16) SoC:
//!   1. unrestricted — every compute phase may use the CPU, GPU, or its DSA;
//!   2. pinned — HS and LUD are *forced* onto their DSAs (no GPU fallback);
//!   3. no DSA access — the DSAs exist but HS and LUD may not use them.
//!
//! The unrestricted evaluation is recorded once with
//! [`Hilp::evaluate_recorded`]; every edit is then answered incrementally by
//! [`Hilp::evaluate_delta`], which recognises both edits as pure
//! tightenings (they only *remove* execution modes) and rides the parent's
//! proven per-level bounds along as termination certificates. Each delta
//! answer is cross-checked bit for bit against a from-scratch evaluation,
//! and both timings are printed. Re-asking the unedited question takes the
//! identity tier: the recorded result comes back verbatim in microseconds.

use std::time::Instant;

use hilp_core::{Hilp, RecordedEvaluation, SolverConfig, TimeStepPolicy, WhatIfPath};
use hilp_soc::{Constraints, DsaSpec, SocSpec};
use hilp_workloads::{Workload, WorkloadVariant};

fn soc() -> SocSpec {
    SocSpec::new(4)
        .with_gpu(16)
        .with_dsa(DsaSpec::new(16, "LUD"))
        .with_dsa(DsaSpec::new(16, "HS"))
}

/// Applies an `E_cap` edit to the accelerated benchmarks: pin them to the
/// DSA (drop GPU/CPU compute modes) or forbid the DSA.
fn edited_workload(pin_to_dsa: bool, allow_dsa: bool) -> Workload {
    let base = Workload::rodinia(WorkloadVariant::Default);
    let apps = base
        .applications()
        .iter()
        .map(|app| {
            let mut app = app.clone();
            if app.name == "HS" || app.name == "LUD" {
                let compute = &mut app.phases[1];
                if pin_to_dsa {
                    // E_cap = 1 only for the target DSA.
                    compute.gpu_eligible = false;
                    compute.cpu_seconds = None;
                }
                if !allow_dsa {
                    compute.dsa_key = None;
                }
            }
            app
        })
        .collect();
    Workload::new("Default (edited)", apps)
}

fn evaluator(workload: Workload) -> Hilp {
    Hilp::new(workload, soc())
        .with_constraints(Constraints::paper_default())
        .with_policy(TimeStepPolicy::sweep())
        .with_solver(SolverConfig::sweep())
}

fn path_label(path: &WhatIfPath) -> String {
    match path {
        WhatIfPath::Identity => "identity".to_string(),
        WhatIfPath::Certified { levels } => format!("certified x{levels}"),
        WhatIfPath::Scratch => "scratch".to_string(),
    }
}

fn report(name: &str, recorded: &RecordedEvaluation, baseline_seconds: f64, detail: &str) {
    let eval = &recorded.evaluation;
    println!(
        "{name:<24} makespan {:>7.1} s  speedup {:>6.1}x  avg WLP {:.2}  [{detail}]",
        eval.makespan_seconds,
        baseline_seconds / eval.makespan_seconds,
        eval.avg_wlp
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E_cap what-if analysis on {} ==\n", soc().label());
    // Measure every scenario against the same sequential baseline: the
    // unedited workload on one CPU core (pinning removes CPU fallbacks,
    // which would otherwise shrink the per-scenario baseline).
    let baseline_seconds = Workload::rodinia(WorkloadVariant::Default).sequential_cpu_seconds();

    // Record the unrestricted evaluation once; it becomes the parent every
    // subsequent what-if edit is answered relative to.
    let parent = evaluator(edited_workload(false, true));
    let record_started = Instant::now();
    let baseline = parent.evaluate_recorded()?;
    let record_seconds = record_started.elapsed().as_secs_f64();
    report(
        "unrestricted",
        &baseline,
        baseline_seconds,
        &format!("recorded in {:.0} ms", record_seconds * 1e3),
    );

    let edits = [
        ("HS/LUD pinned to DSAs", edited_workload(true, true)),
        ("HS/LUD denied the DSAs", edited_workload(false, false)),
    ];
    for (name, workload) in edits {
        let edited = evaluator(workload);
        let scratch_started = Instant::now();
        let scratch = edited.evaluate_recorded()?;
        let scratch_seconds = scratch_started.elapsed().as_secs_f64();
        let delta_started = Instant::now();
        let (answered, path) = edited.evaluate_delta(&parent, &baseline)?;
        let delta_seconds = delta_started.elapsed().as_secs_f64();
        assert_eq!(
            answered, scratch,
            "delta answer diverged from the from-scratch evaluation"
        );
        report(
            name,
            &answered,
            baseline_seconds,
            &format!(
                "{}: {:.0} ms vs {:.0} ms scratch",
                path_label(&path),
                delta_seconds * 1e3,
                scratch_seconds * 1e3
            ),
        );
    }

    // Re-asking an already-answered question is the interactive hot path:
    // identical fingerprints replay the recorded result without solving.
    let repeat_started = Instant::now();
    let (replayed, path) = parent.evaluate_delta(&parent, &baseline)?;
    let repeat_micros = repeat_started.elapsed().as_secs_f64() * 1e6;
    assert_eq!(path, WhatIfPath::Identity);
    assert_eq!(replayed, baseline);
    println!(
        "\nrepeat query (unchanged inputs): {} tier, {repeat_micros:.0} us",
        path_label(&path)
    );

    println!(
        "\nPinning costs little (the optimizer already prefers the DSAs for \
         HS and LUD), while denying the DSAs pushes both kernels back onto \
         the 16-SM GPU and the speedup collapses towards the GPU-bottleneck \
         level — exactly why the paper allocates DSAs to the two \
         longest-running compute phases. Both edits only remove execution \
         modes, so the delta solver classifies them as tightenings and \
         reuses the unrestricted run's proven bounds as certificates."
    );
    Ok(())
}
