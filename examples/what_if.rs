//! What-if analysis with the compatibility matrix `E_cap` (Section III-B):
//! "it could be used to explore the impact of pinning a phase to a
//! specific DSA compared to no restrictions."
//!
//! Run with `cargo run --release --example what_if`.
//!
//! Three scenarios for the Default workload on a (c4,g16,d2^16) SoC:
//!   1. unrestricted — every compute phase may use the CPU, GPU, or its DSA;
//!   2. pinned — HS and LUD are *forced* onto their DSAs (no GPU fallback);
//!   3. no DSA access — the DSAs exist but HS and LUD may not use them.

use hilp_core::{Hilp, SolverConfig, TimeStepPolicy};
use hilp_soc::{Constraints, DsaSpec, SocSpec};
use hilp_workloads::{Workload, WorkloadVariant};

fn soc() -> SocSpec {
    SocSpec::new(4)
        .with_gpu(16)
        .with_dsa(DsaSpec::new(16, "LUD"))
        .with_dsa(DsaSpec::new(16, "HS"))
}

/// Applies an `E_cap` edit to the accelerated benchmarks: pin them to the
/// DSA (drop GPU/CPU compute modes) or forbid the DSA.
fn edited_workload(pin_to_dsa: bool, allow_dsa: bool) -> Workload {
    let base = Workload::rodinia(WorkloadVariant::Default);
    let apps = base
        .applications()
        .iter()
        .map(|app| {
            let mut app = app.clone();
            if app.name == "HS" || app.name == "LUD" {
                let compute = &mut app.phases[1];
                if pin_to_dsa {
                    // E_cap = 1 only for the target DSA.
                    compute.gpu_eligible = false;
                    compute.cpu_seconds = None;
                }
                if !allow_dsa {
                    compute.dsa_key = None;
                }
            }
            app
        })
        .collect();
    Workload::new("Default (edited)", apps)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E_cap what-if analysis on {} ==\n", soc().label());
    let scenarios = [
        ("unrestricted", edited_workload(false, true)),
        ("HS/LUD pinned to DSAs", edited_workload(true, true)),
        ("HS/LUD denied the DSAs", edited_workload(false, false)),
    ];
    // Measure every scenario against the same sequential baseline: the
    // unedited workload on one CPU core (pinning removes CPU fallbacks,
    // which would otherwise shrink the per-scenario baseline).
    let baseline_seconds = Workload::rodinia(WorkloadVariant::Default).sequential_cpu_seconds();
    for (name, workload) in scenarios {
        let eval = Hilp::new(workload, soc())
            .with_constraints(Constraints::paper_default())
            .with_policy(TimeStepPolicy::sweep())
            .with_solver(SolverConfig::sweep())
            .evaluate()?;
        println!(
            "{name:<24} makespan {:>7.1} s  speedup {:>6.1}x  avg WLP {:.2}",
            eval.makespan_seconds,
            baseline_seconds / eval.makespan_seconds,
            eval.avg_wlp
        );
    }
    println!(
        "\nPinning costs little (the optimizer already prefers the DSAs for \
         HS and LUD), while denying the DSAs pushes both kernels back onto \
         the 16-SM GPU and the speedup collapses towards the GPU-bottleneck \
         level — exactly why the paper allocates DSAs to the two \
         longest-running compute phases."
    );
    Ok(())
}
