//! Section VII / Figures 9-10: the Streaming-Dataflow Application (SDA).
//!
//! Run with `cargo run --release --example streaming_dataflow`.
//!
//! Demonstrates HILP's extensibility: the SDA's fork-join dependency DAG
//! (three pinned data sources -> fusion -> three compute kernels -> post
//! processing) replaces the Rodinia chain, and the evaluator is otherwise
//! unchanged. Three SoC scenarios are compared: the baseline
//! `(c1,g8,d3^1)`, a 2x-faster CPU, and a 2x-bigger GPU.

use hilp_core::SolverConfig;
use hilp_dse::experiments::fig10_sda;
use hilp_dse::SweepConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SweepConfig {
        solver: SolverConfig::exact(),
        ..SweepConfig::default()
    };

    println!("== SDA: two pipelined samples per scenario ==\n");
    let results = fig10_sda(2, &config)?;
    let baseline = results[0].makespan_seconds;
    for r in &results {
        println!(
            "{:?} on {}: makespan {:.0} s, avg WLP {:.2}",
            r.scenario, r.label, r.makespan_seconds, r.avg_wlp
        );
        println!("{}\n", r.rendered);
    }

    println!("== Summary ==");
    for r in &results {
        let gain = baseline / r.makespan_seconds;
        println!(
            "  {:?}: {:.0} s ({:.2}x vs baseline)",
            r.scenario, r.makespan_seconds, gain
        );
    }
    println!(
        "\nPaper (Figure 10): the baseline SoC misses its throughput target; \
         either doubling CPU speed or doubling GPU SMs meets it."
    );
    Ok(())
}
