//! A mobile-SoC design study on the synthetic Mobile workload —
//! demonstrating that the pipeline generalizes beyond Rodinia.
//!
//! Run with `cargo run --release --example mobile_soc`.
//!
//! Sweeps a small space of phone-class SoCs (few CPU cores, small GPU,
//! DSAs for the heaviest kernels) under a tight mobile power budget and
//! prints the HILP Pareto front plus the per-application breakdown of the
//! winner.

use hilp_core::{report, Hilp, SolverConfig, TimeStepPolicy};
use hilp_dse::{evaluate_space, pareto_front, ModelKind, SweepConfig};
use hilp_soc::{Constraints, DsaSpec, SocSpec};
use hilp_workloads::mobile::{dsa_priority_order, mobile_workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = mobile_workload();
    println!(
        "Mobile workload: {} apps, {:.0} s sequential on one core\n",
        workload.applications().len(),
        workload.sequential_cpu_seconds()
    );

    // Phone-class space: 1/2/4 CPUs, 0/4/8-SM GPU, 0-3 DSAs with 2/4 PEs.
    let mut socs = Vec::new();
    for cpus in [1u32, 2, 4] {
        for gpu in [0u32, 4, 8] {
            socs.push(SocSpec::new(cpus).with_gpu(gpu));
            for dsas in 1..=3usize {
                for pes in [2u32, 4] {
                    let mut soc = SocSpec::new(cpus).with_gpu(gpu);
                    for key in dsa_priority_order().into_iter().take(dsas) {
                        soc = soc.with_dsa(DsaSpec::new(pes, key));
                    }
                    socs.push(soc);
                }
            }
        }
    }
    println!(
        "sweeping {} phone-class SoCs under a 15 W budget...\n",
        socs.len()
    );

    let constraints = Constraints::unconstrained()
        .with_power(15.0)
        .with_bandwidth(100.0);
    let config = SweepConfig {
        policy: TimeStepPolicy {
            initial_seconds: 2.0,
            target_steps: 100,
            refine_factor: 5.0,
            max_refinements: 3,
        },
        solver: SolverConfig::sweep(),
        threads: 0,
        memoize: true,
        share_bounds: true,
        ..SweepConfig::default()
    };
    let points = evaluate_space(&workload, &socs, &constraints, ModelKind::Hilp, &config)?;
    let front = pareto_front(&points);

    println!("HILP Pareto front (area mm^2, speedup, label):");
    for &i in &front {
        let p = &points[i];
        println!("  {:>6.1}  {:>6.1}x  {}", p.area_mm2, p.speedup, p.label);
    }

    let best = &points[*front.last().expect("non-empty front")];
    println!("\nwinner: {} — per-application breakdown:\n", best.label);
    let eval = Hilp::new(workload, best.soc.clone())
        .with_constraints(constraints)
        .with_policy(config.policy)
        .with_solver(SolverConfig::default())
        .evaluate()?;
    println!("{}", eval.schedule.render_gantt(&eval.instance, 100));
    println!("{}", report::render_reports(&eval));
    Ok(())
}
