//! Section VII's memory-hierarchy extension: per-cache-level bandwidth
//! constraints as additional cumulative resources.
//!
//! Run with `cargo run --release --example memory_hierarchy`.
//!
//! The paper sketches the extension: "add new resource constraints that
//! represent the bandwidth limits at each cache level (e.g., L1, L2, and
//! LLC)". This example models a GPU and a DSA that share a last-level
//! cache: with ample LLC bandwidth their kernels overlap freely; with a
//! scarce LLC the schedule serializes them even though machine, power, and
//! DRAM-bandwidth constraints would all allow the overlap.

use hilp_sched::{solve_exact, InstanceBuilder, Mode, SolverConfig};

fn build(llc_gbps: f64) -> hilp_sched::Instance {
    let mut b = InstanceBuilder::new();
    let cpu = b.add_machine("cpu");
    let gpu = b.add_machine("gpu");
    let dsa = b.add_machine("dsa");
    let llc = b.add_resource("llc-bandwidth", llc_gbps);

    // Two applications: setup on the CPU, then an LLC-hungry kernel.
    for (name, accel, kernel_steps, llc_need) in [("img", gpu, 6, 70.0), ("net", dsa, 5, 60.0)] {
        let setup = b.add_task(format!("{name}.setup"), vec![Mode::on(cpu, 1)]);
        let kernel = b.add_task(
            format!("{name}.kernel"),
            vec![Mode::on(accel, kernel_steps).uses(llc, llc_need)],
        );
        let teardown = b.add_task(format!("{name}.teardown"), vec![Mode::on(cpu, 1)]);
        b.add_precedence(setup, kernel);
        b.add_precedence(kernel, teardown);
    }
    b.set_horizon(40);
    b.build().expect("valid instance")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Memory-hierarchy extension: a shared LLC as a resource ==\n");
    for llc in [200.0, 100.0] {
        let instance = build(llc);
        let outcome = solve_exact(&instance, &SolverConfig::default())?;
        println!(
            "LLC bandwidth {llc:>5.0} GB/s -> makespan {} steps (optimal: {})",
            outcome.makespan, outcome.proved_optimal
        );
        println!("{}\n", outcome.schedule.render(&instance));
    }
    println!(
        "With 200 GB/s the kernels co-run (70 + 60 <= 200); at 100 GB/s the \
         LLC constraint serializes them even though they occupy different \
         accelerators."
    );
    Ok(())
}
