//! Figure 7: sweep the 372-SoC design space under MA, Gables, and HILP.
//!
//! Run with `cargo run --release --example design_space` (takes a few
//! minutes; pass `--quick` to evaluate a 60-SoC subsample).
//!
//! Prints the Pareto front of each model and the paper's headline
//! comparison: the highest-performing Pareto-optimal SoC per model.

use hilp_dse::experiments::{fig7_space, SpaceResult};
use hilp_dse::plot::{Marker, Plot};
use hilp_dse::{design_space, ModelKind, SweepConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut socs = design_space(4.0);
    if quick {
        // Deterministic subsample: every 6th SoC plus the paper's picks.
        socs = socs.into_iter().step_by(6).collect();
        println!("(quick mode: {} of 372 SoCs)\n", socs.len());
    } else {
        println!("Evaluating all {} SoCs under three models...\n", socs.len());
    }

    let config = SweepConfig::default();
    let mut results: Vec<SpaceResult> = Vec::new();
    for model in [ModelKind::MultiAmdahl, ModelKind::Gables, ModelKind::Hilp] {
        let result = fig7_space(&socs, model, &config)?;
        println!("{}", result.render_front());
        results.push(result);
    }

    // Regenerate Figure 7a as an SVG: the three Pareto fronts.
    let mut plot = Plot::new(
        "Figure 7a: Pareto fronts (Default, 600 W)",
        "chip area (mm^2)",
        "speedup",
    );
    for result in &results {
        let front: Vec<(f64, f64)> = result
            .front
            .iter()
            .map(|&i| (result.points[i].area_mm2, result.points[i].speedup))
            .collect();
        plot.add_series(result.model.name(), Marker::Line, front);
    }
    std::fs::create_dir_all("results").ok();
    plot.save("results/fig7a_pareto.svg")?;
    hilp_dse::sweep::write_csv(
        &results.last().expect("three models ran").points,
        "results/fig7_hilp_points.csv",
    )?;
    println!("(wrote results/fig7a_pareto.svg and results/fig7_hilp_points.csv)\n");

    println!("== Highest-performing Pareto-optimal SoC per model ==");
    for result in &results {
        let best = result.best();
        println!(
            "  {:<7} {:<18} speedup {:>6.1}x  area {:>6.1} mm^2  wlp {:>4.2}",
            result.model.name(),
            best.label,
            best.speedup,
            best.area_mm2,
            best.avg_wlp
        );
    }
    println!(
        "\nPaper: MA picks (c1,g64,d0^0) at 18.2x / 432.6 mm^2; Gables picks \
         (c4,g4,d3^4) at 62.1x / 170.4 mm^2; HILP picks (c4,g16,d2^16) at \
         45.6x / 378.4 mm^2."
    );
    Ok(())
}
