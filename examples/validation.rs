//! Figures 5 and 6: the validation experiments.
//!
//! Run with `cargo run --release --example validation`.
//!
//! Regenerates the series behind the paper's validation section:
//! Amdahl's law (5a), the memory wall (5b), dark silicon (5c), and the
//! MA / HILP / Gables comparison (6a/6b), plus Tables II and III.

use hilp_dse::experiments::{
    fig5a_amdahl, fig5b_memory_wall, fig5c_dark_silicon, fig6_wlp_comparison, table2_rows,
    table3_rows,
};
use hilp_dse::plot::{Marker, Plot};
use hilp_dse::{experiments::Series, SweepConfig};
use hilp_workloads::WorkloadVariant;

fn save_series(path: &str, title: &str, x_label: &str, series: &[Series]) {
    let mut plot = Plot::new(title, x_label, "speedup");
    for s in series {
        plot.add_series(&s.label, Marker::Line, s.points.clone());
    }
    std::fs::create_dir_all("results").ok();
    if plot.save(path).is_ok() {
        println!("(wrote {path})");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SweepConfig::default();

    println!("== Table II (published vs re-fitted through the synthetic profiler) ==");
    for row in table2_rows() {
        println!("{row}");
    }
    println!("\n== Table III (GPU power scaling) ==");
    for row in table3_rows() {
        println!("{row}");
    }

    println!("\n== Figure 5a: Amdahl's law (Default, unconstrained) ==");
    println!("   x = CPU cores, y = speedup");
    let amdahl = fig5a_amdahl(&config)?;
    for series in &amdahl.series {
        println!("{series}");
    }
    for (sms, limit) in &amdahl.compute_limits {
        println!("  {sms}-SM GPU compute limit: {limit:.1}x");
    }
    save_series(
        "results/fig5a_amdahl.svg",
        "Figure 5a: Amdahl's law",
        "CPU cores",
        &amdahl.series,
    );

    println!("\n== Figure 5b: the memory wall (Optimized, 4 CPUs) ==");
    println!("   x = bandwidth budget GB/s, y = speedup");
    let wall = fig5b_memory_wall(&config)?;
    for series in &wall {
        println!("{series}");
    }
    save_series(
        "results/fig5b_memory_wall.svg",
        "Figure 5b: the memory wall",
        "bandwidth budget (GB/s)",
        &wall,
    );

    println!("\n== Figure 5c: dark silicon (Optimized, 4 CPUs) ==");
    println!("   x = power budget W, y = speedup");
    let dark = fig5c_dark_silicon(&config)?;
    for series in &dark {
        println!("{series}");
    }
    save_series(
        "results/fig5c_dark_silicon.svg",
        "Figure 5c: dark silicon",
        "power budget (W)",
        &dark,
    );

    for variant in [WorkloadVariant::Rodinia, WorkloadVariant::Optimized] {
        println!(
            "\n== Figure 6 ({:?}): MA vs HILP vs Gables on a 64-SM SoC ==",
            variant
        );
        let rows = fig6_wlp_comparison(variant, &config)?;
        for row in &rows {
            println!("{row}");
        }
        let mut plot = Plot::new(
            format!("Figure 6 ({variant:?}): average WLP"),
            "CPU cores",
            "avg WLP",
        );
        let line = |f: fn(&hilp_dse::experiments::Fig6Row) -> f64| {
            rows.iter()
                .map(|r| (f64::from(r.cpus), f(r)))
                .collect::<Vec<_>>()
        };
        plot.add_series("MA", Marker::Line, line(|r| r.ma.0));
        plot.add_series("HILP", Marker::Line, line(|r| r.hilp.0));
        plot.add_series("Gables", Marker::Line, line(|r| r.gables.0));
        let path = format!("results/fig6_wlp_{variant:?}.svg").to_lowercase();
        if plot.save(&path).is_ok() {
            println!("(wrote {path})");
        }
    }
    Ok(())
}
