//! Quickstart: the paper's worked example (Figures 2 and 3) end to end.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Walks through HILP's core loop on the two-application example of
//! Section II: solve the unconstrained scheduling problem, compare against
//! naive all-on-CPU execution and the MA/Gables extremes, then add the 3 W
//! power budget of Figure 3 and watch the schedule change.

use hilp_core::example2;
use hilp_core::{average_wlp, Hilp, SolverConfig, TimeStepPolicy};
use hilp_soc::{Constraints, DsaSpec, SocSpec};
use hilp_workloads::{Workload, WorkloadVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== HILP quickstart: the paper's worked example ==\n");

    // --- Figure 2: the unconstrained optimum -----------------------------
    let (instance, schedule, makespan) = example2::solve_figure2()?;
    println!("Figure 2 — applications m and n on a CPU + GPU + DSA SoC");
    println!(
        "  naive all-on-CPU execution: {} s",
        example2::NAIVE_CPU_SECONDS
    );
    println!("  HILP's optimal schedule:    {makespan} s");
    println!(
        "  speedup:                    {:.1}x",
        f64::from(example2::NAIVE_CPU_SECONDS) / f64::from(makespan)
    );
    println!(
        "  average WLP:                {:.1} (MA pins this at 1.0; Gables reaches 2.4)",
        average_wlp(&schedule, &instance)
    );
    println!("\n{}\n", schedule.render(&instance));

    // --- Figure 3: the 3 W power budget ----------------------------------
    let (instance3, schedule3, makespan3) = example2::solve_figure3()?;
    println!(
        "Figure 3 — same SoC under a {} W power budget",
        example2::POWER_BUDGET_W
    );
    println!("  power-constrained optimum:  {makespan3} s");
    let peak = schedule3
        .power_profile(&instance3)
        .into_iter()
        .fold(0.0f64, f64::max);
    println!("  peak power draw:            {peak:.1} W");
    println!("\n{}\n", schedule3.render(&instance3));

    // --- A real workload on a real SoC ------------------------------------
    println!("== The paper's flagship SoC on the Default workload ==\n");
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let soc = SocSpec::new(4)
        .with_gpu(16)
        .with_dsa(DsaSpec::new(16, "LUD"))
        .with_dsa(DsaSpec::new(16, "HS"));
    println!("SoC: {}  ({:.1} mm^2)", soc.label(), soc.area_mm2());
    let eval = Hilp::new(workload, soc)
        .with_constraints(Constraints::paper_default())
        .with_policy(TimeStepPolicy::sweep())
        .with_solver(SolverConfig::default())
        .evaluate()?;
    println!(
        "  makespan {:.1} s | speedup {:.1}x | avg WLP {:.2} | gap {:.1}% | step {} ms",
        eval.makespan_seconds,
        eval.speedup,
        eval.avg_wlp,
        eval.gap * 100.0,
        (eval.time_step_seconds * 1000.0).round()
    );
    println!("  (the paper reports a 45.6x speedup for this configuration)");
    Ok(())
}
