//! Cross-solver differential oracle over random instances.
//!
//! Property tests drawing from the shared `hilp-testkit` strategies and
//! running the full differential battery: brute-force equality on tiny
//! instances, the bounds sandwich, MILP agreement within the reported gap,
//! online-dispatch domination, and the metamorphic transforms. The
//! `fuzz_smoke` binary runs the same battery at larger budgets.

use proptest::prelude::*;

use hilp_sched::{solve_exact, InstanceBuilder, Mode, SolverConfig};
use hilp_testkit::delta::{arb_perturbation, check_delta};
use hilp_testkit::harness::{
    check_instance, check_pipeline, permute_tasks, relax_caps, scale_time, CheckStats, OracleConfig,
};
use hilp_testkit::strategies::{
    arb_constraints, arb_instance, arb_soc, arb_workload, InstanceParams,
};
use hilp_testkit::{brute_force_makespan, brute_force_schedule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Tiny instances get the full battery: brute-force reference, both
    /// MILP encodings, bounds, online dispatch, and metamorphic transforms.
    #[test]
    fn tiny_instances_agree_across_all_solvers(
        instance in arb_instance(InstanceParams::tiny()),
    ) {
        let mut stats = CheckStats::default();
        let result = check_instance(&instance, &OracleConfig::default(), &mut stats);
        prop_assert!(result.is_ok(), "{}", result.unwrap_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Beyond brute-force reach the solver-vs-solver invariants must still
    /// hold: feasibility, the bounds sandwich, heuristic domination.
    #[test]
    fn small_instances_keep_the_bounds_sandwich(
        instance in arb_instance(InstanceParams::small()),
    ) {
        let mut stats = CheckStats::default();
        let result = check_instance(&instance, &OracleConfig::default(), &mut stats);
        prop_assert!(result.is_ok(), "{}", result.unwrap_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random workload/SoC/constraint triples encode and satisfy the solver
    /// invariants end to end.
    #[test]
    fn encoded_pipelines_stay_consistent(
        workload in arb_workload(),
        soc in arb_soc(),
        constraints in arb_constraints(),
    ) {
        let mut stats = CheckStats::default();
        let result = check_pipeline(&workload, &soc, &constraints, &mut stats);
        prop_assert!(result.is_ok(), "{}", result.unwrap_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exact solver (not just brute force) is invariant under task
    /// relabeling when it proves optimality on both sides.
    #[test]
    fn exact_solver_is_permutation_invariant(
        instance in arb_instance(InstanceParams::tiny()),
    ) {
        let permuted = permute_tasks(&instance);
        let config = SolverConfig::exact();
        let original = solve_exact(&instance, &config);
        let relabeled = solve_exact(&permuted, &config);
        match (&original, &relabeled) {
            (Ok(a), Ok(b)) => {
                if a.proved_optimal && b.proved_optimal {
                    prop_assert_eq!(a.makespan, b.makespan, "relabeling changed the optimum");
                }
            }
            (Ok(_), Err(_)) | (Err(_), Ok(_)) => {
                prop_assert!(false, "relabeling changed feasibility");
            }
            (Err(_), Err(_)) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental delta solver must agree bit for bit with a
    /// from-scratch solve after a random single-axis perturbation — under
    /// the exact configuration on tiny instances and under the sweep's
    /// heuristic-only configuration (the certificate tier) on small ones.
    #[test]
    fn delta_solves_match_scratch_solves(
        tiny in arb_instance(InstanceParams::tiny()),
        small in arb_instance(InstanceParams::small()),
        perturbation in arb_perturbation(),
    ) {
        let mut stats = CheckStats::default();
        let exact = check_delta(&tiny, &perturbation, &OracleConfig::default().solver, &mut stats);
        prop_assert!(exact.is_ok(), "{}", exact.unwrap_err());
        let sweep = check_delta(&small, &perturbation, &SolverConfig::sweep(), &mut stats);
        prop_assert!(sweep.is_ok(), "{}", sweep.unwrap_err());
    }
}

/// The figure 2 instance pins all transforms to concrete expected numbers.
#[test]
fn figure2_metamorphic_anchor() {
    let instance = hilp_core::example2::figure2_instance();
    let optimum = brute_force_makespan(&instance).expect("figure 2 is feasible");
    assert_eq!(optimum, hilp_core::example2::UNCONSTRAINED_OPTIMUM);

    let scaled = scale_time(&instance, 4);
    assert_eq!(brute_force_makespan(&scaled), Some(optimum * 4));

    let relaxed = relax_caps(&instance);
    let relaxed_optimum = brute_force_makespan(&relaxed).expect("relaxation stays feasible");
    assert!(relaxed_optimum <= optimum);

    let permuted = permute_tasks(&instance);
    assert_eq!(brute_force_makespan(&permuted), Some(optimum));
}

/// An infeasible horizon must be reported identically by brute force, the
/// exact solver, and the differential harness.
#[test]
fn infeasible_horizon_agreement() {
    let mut b = InstanceBuilder::new();
    let cpu = b.add_machine("cpu");
    let a = b.add_task("a", vec![Mode::on(cpu, 4)]);
    let c = b.add_task("c", vec![Mode::on(cpu, 4)]);
    b.add_precedence_lagged(a, c, 2);
    b.set_horizon(9);
    let instance = b.build().expect("valid");
    assert_eq!(brute_force_schedule(&instance), None);
    assert!(solve_exact(&instance, &SolverConfig::exact()).is_err());
    let mut stats = CheckStats::default();
    check_instance(&instance, &OracleConfig::default(), &mut stats)
        .expect("all solvers agree on infeasibility");
    assert_eq!(stats.infeasible_agreed, 1);
}
