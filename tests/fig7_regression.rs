//! Regression test pinning the Figure 7 sweep against `BENCH_sweep.json`.
//!
//! The timing harness (`cargo run --release -p hilp-bench --bin
//! sweep_timing`) commits the optimized run's per-point makespans for all
//! 372 SoCs x 3 models. This test re-evaluates a deterministic subsample
//! of that grid with the same configuration and requires the recomputed
//! makespans to match the committed ones, so any change that silently
//! shifts Fig. 7 — a solver regression, an encoding change, a design-space
//! edit — fails CI instead of skewing the reproduced figure.
//!
//! If the shift is *intentional* (e.g. a better heuristic), regenerate the
//! baseline by re-running the harness and commit the new
//! `BENCH_sweep.json` alongside the change.

use std::collections::HashMap;

use hilp_core::SolverConfig;
use hilp_dse::{design_space, evaluate_space, ModelKind, SweepConfig};
use hilp_sched::TimetableKind;
use hilp_soc::Constraints;
use hilp_workloads::{Workload, WorkloadVariant};

/// Every Nth SoC of the 372-point space is re-evaluated. 37 is coprime to
/// the space's generator strides, so the subsample crosses CPU counts,
/// GPU sizes, and DSA allocations while keeping debug-mode runtime small.
const SUBSAMPLE_STEP: usize = 37;

const MODELS: [ModelKind; 3] = [ModelKind::MultiAmdahl, ModelKind::Gables, ModelKind::Hilp];

/// The exact configuration `sweep_timing` used for the committed run (its
/// `optimized_config`): event timetable, serial multi-start, memoization,
/// and — via the `SweepConfig` defaults — cross-point bound sharing. The
/// subsample below therefore re-runs *with sharing enabled*, gating that
/// sharing leaves every committed makespan in place.
fn committed_config() -> SweepConfig {
    SweepConfig {
        solver: SolverConfig {
            timetable: TimetableKind::Event,
            heuristic_threads: 1,
            ..SolverConfig::sweep()
        },
        memoize: true,
        ..SweepConfig::default()
    }
}

struct Baseline {
    /// `(model name, SoC label)` -> `(makespan_seconds, gap)`.
    points: HashMap<(String, String), (f64, f64)>,
    socs: usize,
}

/// Extracts the value of `"key": "..."` (string) from a JSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the value of `"key": <number>` from a JSON line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..]
        .find([',', '}'])
        .map_or(line.len(), |i| i + start);
    line[start..end].trim().parse().ok()
}

/// Line-based parse of `BENCH_sweep.json`: the harness writes one sweep
/// point per line inside each model's `"sweep"` array, so a full JSON
/// parser is unnecessary (and the repo deliberately has no JSON dep).
fn load_baseline() -> Baseline {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run the sweep_timing bench to create it)"));
    let mut points = HashMap::new();
    let mut socs = 0usize;
    let mut model = String::new();
    for line in text.lines() {
        if let Some(m) = str_field(line, "model") {
            model = m;
        } else if line.contains("\"socs\":") {
            socs = num_field(line, "socs").expect("socs count") as usize;
        }
        if let Some(label) = str_field(line, "label") {
            let makespan = num_field(line, "makespan_seconds")
                .unwrap_or_else(|| panic!("makespan missing on: {line}"));
            let gap = num_field(line, "gap").unwrap_or_else(|| panic!("gap missing on: {line}"));
            assert!(!model.is_empty(), "point before any model entry: {line}");
            let key = (model.clone(), label);
            assert!(
                points.insert(key.clone(), (makespan, gap)).is_none(),
                "duplicate baseline point {key:?}"
            );
        }
    }
    Baseline { points, socs }
}

#[test]
fn committed_sweep_covers_the_whole_design_space() {
    let baseline = load_baseline();
    let space = design_space(4.0);
    assert_eq!(baseline.socs, space.len(), "committed SoC count");
    assert_eq!(
        baseline.points.len(),
        space.len() * MODELS.len(),
        "one committed point per SoC per model"
    );
}

#[test]
fn subsampled_sweep_matches_the_committed_baseline() {
    let baseline = load_baseline();
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let constraints = Constraints::paper_default();
    let config = committed_config();
    let socs: Vec<_> = design_space(4.0)
        .into_iter()
        .step_by(SUBSAMPLE_STEP)
        .collect();
    assert!(socs.len() >= 10, "subsample too thin: {}", socs.len());

    for model in MODELS {
        let points = evaluate_space(&workload, &socs, &constraints, model, &config)
            .unwrap_or_else(|e| panic!("{} sweep: {e}", model.name()));
        assert_eq!(points.len(), socs.len());
        for point in points {
            let key = (model.name().to_string(), point.label.clone());
            let &(makespan, gap) = baseline
                .points
                .get(&key)
                .unwrap_or_else(|| panic!("no committed baseline for {key:?}"));
            // The solver is deterministic for a fixed configuration and the
            // committed floats round-trip exactly, so the recomputed value
            // must agree to rounding noise.
            let rel = (point.makespan_seconds - makespan).abs() / makespan.max(1e-12);
            assert!(
                rel <= 1e-9,
                "{} {}: recomputed makespan {} vs committed {} (rel {rel:.3e})",
                model.name(),
                point.label,
                point.makespan_seconds,
                makespan,
            );
            assert!(
                (point.gap - gap).abs() <= 1e-9,
                "{} {}: recomputed gap {} vs committed {}",
                model.name(),
                point.label,
                point.gap,
                gap,
            );
        }
    }
}
