//! Regression test pinning per-point energies and the energy-Pareto
//! fronts against `BENCH_sweep.json`.
//!
//! The timing harness (`cargo run --release -p hilp-bench --bin
//! sweep_timing`) commits an `energy_joules` value with every sweep point
//! (all 372 SoCs x 3 models) and the makespan×energy Pareto fronts of
//! every 37th SoC (its `"pareto"` object, one trade-off per line). This
//! test re-evaluates the same deterministic subsample with the same
//! configuration and requires the recomputed energies and fronts to match
//! the committed ones to 1e-9, so any change that silently shifts the
//! energy model or the cap-ladder — a power-annotation edit, a bound
//! regression, a ladder-stride change — fails CI instead of skewing the
//! committed trade-off data.
//!
//! If the shift is *intentional* (e.g. a recalibrated power table),
//! regenerate the baseline by re-running the harness and commit the new
//! `BENCH_sweep.json` alongside the change.

use std::collections::HashMap;

use hilp_core::SolverConfig;
use hilp_dse::{design_space, evaluate_space, evaluate_space_pareto, ModelKind, SweepConfig};
use hilp_sched::TimetableKind;
use hilp_soc::Constraints;
use hilp_workloads::{Workload, WorkloadVariant};

/// Every Nth SoC of the 372-point space carries a committed Pareto front
/// and is re-evaluated here. Must match `sweep_timing`'s `PARETO_STEP`
/// (and the Fig. 7 regression subsample): 37 is coprime to the space's
/// generator strides, so the subsample crosses CPU counts, GPU sizes, and
/// DSA allocations while keeping debug-mode runtime small.
const SUBSAMPLE_STEP: usize = 37;

const MODELS: [ModelKind; 3] = [ModelKind::MultiAmdahl, ModelKind::Gables, ModelKind::Hilp];

/// Maximum relative disagreement between a recomputed value and its
/// committed counterpart. The harness rounds to 12 significant digits
/// before serialization, ~1000x finer than this gate.
const TOLERANCE: f64 = 1e-9;

/// The exact configuration `sweep_timing` used for the committed run (its
/// `optimized_config`): event timetable, serial multi-start, memoization,
/// and — via the `SweepConfig` defaults — cross-point bound sharing.
fn committed_config() -> SweepConfig {
    SweepConfig {
        solver: SolverConfig {
            timetable: TimetableKind::Event,
            heuristic_threads: 1,
            ..SolverConfig::sweep()
        },
        memoize: true,
        ..SweepConfig::default()
    }
}

/// One committed trade-off: `(makespan_seconds, energy_joules, proved)`.
type Tradeoff = (f64, f64, bool);

struct Baseline {
    /// `(model name, SoC label)` -> committed `energy_joules`.
    energies: HashMap<(String, String), f64>,
    /// Committed fronts in file order: `(soc label, trade-offs, complete)`.
    fronts: Vec<(String, Vec<Tradeoff>, bool)>,
}

/// Extracts the value of `"key": "..."` (string) from a JSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the value of `"key": <number>` from a JSON line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..]
        .find([',', '}'])
        .map_or(line.len(), |i| i + start);
    line[start..end].trim().parse().ok()
}

/// Extracts the value of `"key": true|false` from a JSON line.
fn bool_field(line: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    line[start..]
        .trim_start()
        .strip_prefix("true")
        .map(|_| true)
        .or_else(|| {
            line[start..]
                .trim_start()
                .strip_prefix("false")
                .map(|_| false)
        })
}

/// Line-based parse of `BENCH_sweep.json`, the same idiom as the Fig. 7
/// regression test: sweep points are the lines with `"label"` and
/// `"energy_joules"`, Pareto trade-offs the lines with `"soc"` and
/// `"energy_joules"` (consecutive same-`soc` lines are one front,
/// makespan ascending). A full JSON parser is unnecessary, and the repo
/// deliberately has no JSON dep.
fn load_baseline() -> Baseline {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run the sweep_timing bench to create it)"));
    let mut energies = HashMap::new();
    let mut fronts: Vec<(String, Vec<Tradeoff>, bool)> = Vec::new();
    let mut model = String::new();
    for line in text.lines() {
        if let Some(m) = str_field(line, "model") {
            model = m;
        }
        if let Some(label) = str_field(line, "label") {
            let energy = num_field(line, "energy_joules")
                .unwrap_or_else(|| panic!("energy missing on: {line}"));
            assert!(!model.is_empty(), "point before any model entry: {line}");
            let key = (model.clone(), label);
            assert!(
                energies.insert(key.clone(), energy).is_none(),
                "duplicate baseline point {key:?}"
            );
        } else if let Some(soc) = str_field(line, "soc") {
            // `slowest_points` entries also use `"soc"` but carry no
            // energy; only Pareto trade-off lines have both.
            let Some(energy) = num_field(line, "energy_joules") else {
                continue;
            };
            let makespan = num_field(line, "makespan_seconds")
                .unwrap_or_else(|| panic!("makespan missing on: {line}"));
            let proved =
                bool_field(line, "proved").unwrap_or_else(|| panic!("proved missing on: {line}"));
            let complete = bool_field(line, "complete")
                .unwrap_or_else(|| panic!("complete missing on: {line}"));
            match fronts.last_mut() {
                Some((last_soc, points, last_complete)) if *last_soc == soc => {
                    assert_eq!(
                        *last_complete, complete,
                        "{soc}: inconsistent committed complete flag"
                    );
                    points.push((makespan, energy, proved));
                }
                _ => fronts.push((soc, vec![(makespan, energy, proved)], complete)),
            }
        }
    }
    Baseline { energies, fronts }
}

fn rel_diff(recomputed: f64, committed: f64) -> f64 {
    (recomputed - committed).abs() / committed.abs().max(1e-12)
}

#[test]
fn committed_energies_cover_the_design_space() {
    let baseline = load_baseline();
    let space = design_space(4.0);
    assert_eq!(
        baseline.energies.len(),
        space.len() * MODELS.len(),
        "one committed energy per SoC per model"
    );
    assert!(
        baseline.energies.values().all(|&e| e > 0.0),
        "every committed energy is positive"
    );
    // The committed fronts cover exactly the subsample, in order, each
    // well-shaped: makespan strictly ascending, energy strictly
    // descending (a committed dominated point would be a harness bug).
    let subsample: Vec<_> = space.iter().step_by(SUBSAMPLE_STEP).collect();
    assert_eq!(
        baseline.fronts.len(),
        subsample.len(),
        "one front per subsampled SoC"
    );
    for ((soc, points, _), expected) in baseline.fronts.iter().zip(&subsample) {
        assert_eq!(soc, &expected.label(), "front order matches the subsample");
        assert!(!points.is_empty());
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 > w[1].1,
                "{soc}: committed front is not strictly \
                 makespan-ascending / energy-descending"
            );
        }
    }
}

#[test]
fn subsampled_sweep_matches_the_committed_energies() {
    let baseline = load_baseline();
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let constraints = Constraints::paper_default();
    let config = committed_config();
    let socs: Vec<_> = design_space(4.0)
        .into_iter()
        .step_by(SUBSAMPLE_STEP)
        .collect();

    for model in MODELS {
        let points = evaluate_space(&workload, &socs, &constraints, model, &config)
            .unwrap_or_else(|e| panic!("{} sweep: {e}", model.name()));
        for point in points {
            let key = (model.name().to_string(), point.label.clone());
            let &committed = baseline
                .energies
                .get(&key)
                .unwrap_or_else(|| panic!("no committed energy for {key:?}"));
            let rel = rel_diff(point.energy_joules, committed);
            assert!(
                rel <= TOLERANCE,
                "{} {}: recomputed energy {} vs committed {} (rel {rel:.3e})",
                model.name(),
                point.label,
                point.energy_joules,
                committed,
            );
        }
    }
}

#[test]
fn recomputed_pareto_fronts_match_the_committed_baseline() {
    let baseline = load_baseline();
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let constraints = Constraints::paper_default();
    let mut config = committed_config();
    // The CI determinism matrix re-runs this test at 1, 2, and 8 sweep
    // workers: every leg must reproduce the committed fronts, so the
    // per-worker-count fronts are transitively bit-identical — worker
    // count is a pure wall-clock knob for the energy-cap ladder too.
    if let Ok(threads) = std::env::var("HILP_PARETO_SWEEP_THREADS") {
        config.threads = threads.parse().expect("HILP_PARETO_SWEEP_THREADS: integer");
    }
    let socs: Vec<_> = design_space(4.0)
        .into_iter()
        .step_by(SUBSAMPLE_STEP)
        .collect();
    assert!(socs.len() >= 10, "subsample too thin: {}", socs.len());

    let points = evaluate_space_pareto(&workload, &socs, &constraints, &config)
        .expect("pareto sweep succeeds");
    assert_eq!(points.len(), baseline.fronts.len());
    for (recomputed, (soc, committed, complete)) in points.iter().zip(&baseline.fronts) {
        assert_eq!(&recomputed.point.label, soc, "subsample order");
        assert_eq!(
            recomputed.complete, *complete,
            "{soc}: ladder completeness flipped"
        );
        assert_eq!(
            recomputed.front.len(),
            committed.len(),
            "{soc}: recomputed front has {} trade-offs vs committed {}",
            recomputed.front.len(),
            committed.len(),
        );
        for (r, &(makespan, energy, proved)) in recomputed.front.iter().zip(committed) {
            let rel_m = rel_diff(r.makespan_seconds, makespan);
            let rel_e = rel_diff(r.energy_joules, energy);
            assert!(
                rel_m <= TOLERANCE && rel_e <= TOLERANCE,
                "{soc}: recomputed trade-off ({}, {}) vs committed ({makespan}, {energy}) \
                 (rel {rel_m:.3e}, {rel_e:.3e})",
                r.makespan_seconds,
                r.energy_joules,
            );
            assert_eq!(
                r.proved_optimal, proved,
                "{soc}: proved-optimal flag flipped at makespan {makespan}"
            );
        }
    }
}
