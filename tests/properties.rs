//! Property-based tests over the solver substrates and core invariants.
//!
//! The central properties:
//!
//! 1. Every schedule the engine returns is feasible under independent
//!    re-verification (precedence, machine exclusivity, resource caps).
//! 2. The exact branch-and-bound optimum equals the independent MILP
//!    encoding's optimum on random cap-free instances — the two solver
//!    stacks (dedicated scheduler vs simplex-based branch and bound) agree.
//! 3. Lower bounds never exceed the proven optimum.
//! 4. Pareto fronts are exactly the non-dominated subsets.
//! 5. Power-law fitting recovers exact laws and rejects invalid input.
//! 6. Energy metamorphics: power scaling acts on energies alone, energy-cap
//!    relaxation is monotone in makespan, and an infinite cap is
//!    bit-identical to no cap at all.

use proptest::prelude::*;

use hilp_core::milp_encode::makespan_via_milp;
use hilp_model::SolveLimits;
use hilp_sched::{
    lower_bound, solve, solve_exact, solve_pareto, Instance, InstanceBuilder, MachineId, Mode,
    Objective, SolverConfig,
};
use hilp_soc::powerlaw::{fit_power_law, PowerLaw};

// ---------------------------------------------------------------------------
// Random instance generation.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RandomInstanceSpec {
    machines: usize,
    /// Per task: list of (machine, duration, power) mode seeds.
    tasks: Vec<Vec<(usize, u32, u8)>>,
    /// Chain structure: tasks are grouped into apps of this size.
    chain_length: usize,
    power_cap: Option<u8>,
    /// Lag applied to every chain edge, and whether edges are
    /// start-to-start (initiation intervals) instead of finish-to-start.
    edge_lag: u32,
    start_to_start: bool,
}

fn arb_spec(max_tasks: usize, with_caps: bool) -> impl Strategy<Value = RandomInstanceSpec> {
    let machines = 1..=3usize;
    machines
        .prop_flat_map(move |machines| {
            let mode = (0..machines, 1..=6u32, 1..=4u8);
            let task = prop::collection::vec(mode, 1..=2);
            let tasks = prop::collection::vec(task, 1..=max_tasks);
            let chain_length = 1..=3usize;
            let cap = if with_caps {
                prop::option::of(3..=8u8).boxed()
            } else {
                Just(None).boxed()
            };
            (
                Just(machines),
                tasks,
                chain_length,
                cap,
                0..=3u32,
                prop::bool::ANY,
            )
        })
        .prop_map(
            |(machines, tasks, chain_length, power_cap, edge_lag, start_to_start)| {
                RandomInstanceSpec {
                    machines,
                    tasks,
                    chain_length,
                    power_cap,
                    edge_lag,
                    start_to_start,
                }
            },
        )
}

fn build_instance(spec: &RandomInstanceSpec) -> Option<Instance> {
    let mut b = InstanceBuilder::new();
    for m in 0..spec.machines {
        b.add_machine(format!("m{m}"));
    }
    let mut ids = Vec::new();
    for (t, modes) in spec.tasks.iter().enumerate() {
        let modes: Vec<Mode> = modes
            .iter()
            .map(|&(m, d, p)| Mode::on(MachineId(m), d).power(f64::from(p)))
            .collect();
        ids.push(b.add_task(format!("t{t}"), modes));
    }
    // Chains of `chain_length` consecutive tasks, with the spec's edge
    // flavor (plain, lagged, or start-to-start).
    for w in ids.chunks(spec.chain_length) {
        for pair in w.windows(2) {
            if spec.start_to_start {
                b.add_initiation_interval(pair[0], pair[1], spec.edge_lag);
            } else {
                b.add_precedence_lagged(pair[0], pair[1], spec.edge_lag);
            }
        }
    }
    if let Some(cap) = spec.power_cap {
        b.set_power_cap(f64::from(cap));
    }
    b.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // -- Property 1: feasibility of returned schedules --------------------

    #[test]
    fn solver_schedules_are_always_feasible(spec in arb_spec(8, true)) {
        if let Some(instance) = build_instance(&spec) {
            let config = SolverConfig {
                heuristic_starts: 40,
                local_search_passes: 1,
                exact_node_budget: 20_000,
                exact_task_threshold: 8,
                ..SolverConfig::default()
            };
            let outcome = solve(&instance, &config).expect("generous horizon");
            prop_assert!(outcome.schedule.verify(&instance).is_empty());
            prop_assert!(outcome.lower_bound <= outcome.makespan);
        }
    }

    // -- Property 2: the two solver stacks agree --------------------------

    #[test]
    fn exact_scheduler_matches_milp(spec in arb_spec(5, false)) {
        if let Some(instance) = build_instance(&spec) {
            let sched = solve_exact(&instance, &SolverConfig::default())
                .expect("generous horizon");
            prop_assume!(sched.proved_optimal);
            let milp = makespan_via_milp(&instance, &SolveLimits::default())
                .expect("cap-free instance");
            prop_assert_eq!(
                sched.makespan, milp,
                "scheduler {} vs MILP {}", sched.makespan, milp
            );
        }
    }

    // -- Property 3: bounds are sound --------------------------------------

    #[test]
    fn lower_bound_never_exceeds_the_optimum(spec in arb_spec(6, true)) {
        if let Some(instance) = build_instance(&spec) {
            let bound = lower_bound(&instance);
            let exact = solve_exact(&instance, &SolverConfig::default())
                .expect("generous horizon");
            prop_assume!(exact.proved_optimal);
            prop_assert!(
                bound <= exact.makespan,
                "bound {} exceeds optimum {}", bound, exact.makespan
            );
        }
    }

    // -- Property 4: Pareto fronts -----------------------------------------

    #[test]
    fn pareto_front_is_exactly_the_nondominated_set(
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40)
    ) {
        let front = hilp_dse::pareto_front(&points);
        // Everything on the front is non-dominated.
        for &i in &front {
            for (j, p) in points.iter().enumerate() {
                if i != j {
                    let dominates = p.0 <= points[i].0 && p.1 >= points[i].1
                        && (p.0 < points[i].0 || p.1 > points[i].1);
                    prop_assert!(!dominates);
                }
            }
        }
        // Everything off the front is dominated or a duplicate of a front
        // member.
        for (i, q) in points.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            let covered = front.iter().any(|&f| {
                let p = &points[f];
                (p.0 <= q.0 && p.1 >= q.1 && (p.0 < q.0 || p.1 > q.1))
                    || (p.0 == q.0 && p.1 == q.1)
            });
            prop_assert!(covered, "point {} neither on front nor dominated", i);
        }
    }

    // -- Property 5: power-law fitting --------------------------------------

    #[test]
    fn exact_power_laws_are_recovered(
        a in 0.1f64..50.0,
        b in -2.0f64..2.0,
        n in 3usize..8
    ) {
        let law = PowerLaw::new(a, b);
        let points: Vec<(f64, f64)> = (1..=n)
            .map(|i| {
                let x = f64::from(u32::try_from(i).expect("small")) * 7.0;
                (x, law.eval(x))
            })
            .collect();
        let fit = fit_power_law(&points).expect("valid points");
        prop_assert!((fit.law.a - a).abs() < 1e-6 * a.max(1.0));
        prop_assert!((fit.law.b - b).abs() < 1e-6);
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn fit_rejects_nonpositive_points(
        x in -10.0f64..=0.0,
        y in 0.1f64..10.0
    ) {
        prop_assert!(fit_power_law(&[(x, y), (1.0, 1.0)]).is_none());
        prop_assert!(fit_power_law(&[(1.0, x), (2.0, y)]).is_none());
    }

    /// Degenerate typed fits: a single sample never fits, and any zero or
    /// negative power/energy reading poisons the whole fit regardless of
    /// how many valid samples surround it.
    #[test]
    fn typed_fits_reject_degenerate_samples(
        x in 0.1f64..100.0,
        y in 0.1f64..100.0,
        bad in -10.0f64..=0.0,
        valid in prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 1..5)
    ) {
        use hilp_soc::powerlaw::{fit_energy_curve, fit_power_curve, Joules, Watts};
        prop_assert!(fit_power_curve(&[(x, Watts(y))]).is_none());
        prop_assert!(fit_energy_curve(&[(x, Joules(y))]).is_none());
        let mut watts: Vec<(f64, Watts)> =
            valid.iter().map(|&(vx, vy)| (vx, Watts(vy))).collect();
        watts.push((x, Watts(bad)));
        prop_assert!(fit_power_curve(&watts).is_none());
        let mut joules: Vec<(f64, Joules)> =
            valid.iter().map(|&(vx, vy)| (vx, Joules(vy))).collect();
        joules.push((x, Joules(bad)));
        prop_assert!(fit_energy_curve(&joules).is_none());
    }

    // -- LP feasibility ------------------------------------------------------

    #[test]
    fn lp_solutions_satisfy_their_constraints(
        costs in prop::collection::vec(-5.0f64..5.0, 2..4),
        rows in prop::collection::vec(
            (prop::collection::vec(-3.0f64..3.0, 2..4), 0.5f64..20.0),
            1..5
        )
    ) {
        use hilp_lp::{LinearProgram, Objective, Relation, Status};
        let mut lp = LinearProgram::new(Objective::Maximize);
        let vars: Vec<_> = costs.iter().map(|&c| {
            let v = lp.add_variable(c);
            lp.set_bounds(v, 0.0, 10.0).unwrap();
            v
        }).collect();
        for (coeffs, rhs) in &rows {
            let terms: Vec<_> = vars
                .iter()
                .zip(coeffs)
                .map(|(&v, &c)| (v, c))
                .collect();
            lp.add_constraint(terms, Relation::Le, *rhs).unwrap();
        }
        let sol = lp.solve().unwrap();
        // Box-bounded: never unbounded, origin-feasible: never infeasible.
        prop_assert_eq!(sol.status(), Status::Optimal);
        for (coeffs, rhs) in &rows {
            let lhs: f64 = vars
                .iter()
                .zip(coeffs)
                .map(|(&v, &c)| c * sol.value(v))
                .sum();
            prop_assert!(lhs <= rhs + 1e-6, "row violated: {} > {}", lhs, rhs);
        }
        for &v in &vars {
            prop_assert!(sol.value(v) >= -1e-9 && sol.value(v) <= 10.0 + 1e-9);
        }
        // The optimum is at least as good as a few sampled feasible points.
        let zero_objective = 0.0;
        prop_assert!(sol.objective_value() >= zero_objective - 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Deterministic cross-checks too slow to run per proptest case.
// ---------------------------------------------------------------------------

#[test]
fn milp_and_scheduler_agree_on_a_handcrafted_jssp() {
    // A 3-app, 2-machine job shop with contended machines.
    let mut b = InstanceBuilder::new();
    let m0 = b.add_machine("m0");
    let m1 = b.add_machine("m1");
    let chain = |b: &mut InstanceBuilder, d0: u32, d1: u32| {
        let t0 = b.add_task("x", vec![Mode::on(m0, d0)]);
        let t1 = b.add_task("y", vec![Mode::on(m1, d1)]);
        b.add_precedence(t0, t1);
    };
    chain(&mut b, 3, 2);
    chain(&mut b, 2, 4);
    chain(&mut b, 1, 3);
    b.set_horizon(30);
    let instance = b.build().unwrap();
    let sched = solve_exact(&instance, &SolverConfig::default()).unwrap();
    let milp = makespan_via_milp(&instance, &SolveLimits::default()).unwrap();
    assert!(sched.proved_optimal);
    assert_eq!(sched.makespan, milp);
}

// ---------------------------------------------------------------------------
// MILP versus brute force on small integer programs, and resource-capped
// scheduling instances.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bounded 3-variable integer programs: branch and bound must
    /// match exhaustive enumeration of the integer box.
    #[test]
    fn milp_matches_brute_force_enumeration(
        costs in prop::collection::vec(-4i8..=4, 3),
        rows in prop::collection::vec(
            (prop::collection::vec(-3i8..=3, 3), 0i8..=15),
            1..4
        )
    ) {
        use hilp_milp::{MilpProblem, MilpStatus, SolveLimits};
        use hilp_lp::{Objective, Relation};

        let mut milp = MilpProblem::new(Objective::Maximize);
        let vars: Vec<_> = costs
            .iter()
            .map(|&c| {
                let v = milp.add_integer(f64::from(c));
                milp.set_bounds(v, 0.0, 4.0).unwrap();
                v
            })
            .collect();
        for (coeffs, rhs) in &rows {
            let terms: Vec<_> = vars
                .iter()
                .zip(coeffs)
                .map(|(&v, &c)| (v, f64::from(c)))
                .collect();
            milp.add_constraint(terms, Relation::Le, f64::from(*rhs)).unwrap();
        }
        let solution = milp.solve(&SolveLimits::default()).unwrap();

        // Brute force over the 5^3 box.
        let mut best: Option<f64> = None;
        for x in 0..=4i32 {
            for y in 0..=4i32 {
                for z in 0..=4i32 {
                    let point = [x, y, z];
                    let feasible = rows.iter().all(|(coeffs, rhs)| {
                        let lhs: i32 = coeffs
                            .iter()
                            .zip(&point)
                            .map(|(&c, &v)| i32::from(c) * v)
                            .sum();
                        lhs <= i32::from(*rhs)
                    });
                    if feasible {
                        let value: f64 = costs
                            .iter()
                            .zip(&point)
                            .map(|(&c, &v)| f64::from(c) * f64::from(v))
                            .sum();
                        best = Some(best.map_or(value, |b: f64| b.max(value)));
                    }
                }
            }
        }
        // The origin is always feasible... only if every rhs >= 0, which
        // holds by construction (rhs in 0..=15).
        let brute = best.expect("origin is feasible");
        prop_assert_eq!(solution.status(), MilpStatus::Optimal);
        prop_assert!(
            (solution.objective_value() - brute).abs() < 1e-6,
            "milp {} vs brute force {}", solution.objective_value(), brute
        );
    }

    /// Random instances with a user-defined cumulative resource: returned
    /// schedules stay feasible and never beat the volume bound.
    #[test]
    fn resource_capped_schedules_are_feasible(
        durations in prop::collection::vec(1..=5u32, 2..6),
        usages in prop::collection::vec(1..=4u8, 2..6),
        cap in 4..=8u8,
    ) {
        let n = durations.len().min(usages.len());
        let mut b = InstanceBuilder::new();
        let machines: Vec<_> = (0..n).map(|i| b.add_machine(format!("m{i}"))).collect();
        let res = b.add_resource("llc", f64::from(cap));
        for i in 0..n {
            b.add_task(
                format!("t{i}"),
                vec![Mode::on(machines[i], durations[i]).uses(res, f64::from(usages[i]))],
            );
        }
        let inst = b.build().unwrap();
        let outcome = solve(&inst, &SolverConfig::default()).expect("generous horizon");
        prop_assert!(outcome.schedule.verify(&inst).is_empty());
        prop_assert!(outcome.lower_bound <= outcome.makespan);
    }
}

// ---------------------------------------------------------------------------
// Energy metamorphic properties (Property 6).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Multiplying every mode's power — and the power cap with it — by an
    /// integer `k` changes no feasibility or priority decision (all seeds
    /// are integers, so the scaled arithmetic stays exact): the solver
    /// returns the identical schedule with its energy scaled by exactly `k`.
    #[test]
    fn power_scaling_scales_energy_in_place(spec in arb_spec(6, true), k in 1u8..=5) {
        if let Some(instance) = build_instance(&spec) {
            let k = f64::from(k);
            let scaled = hilp_testkit::scale_power(&instance, k);
            let config = SolverConfig::exact();
            let a = solve_exact(&instance, &config).expect("generous horizon");
            let b = solve_exact(&scaled, &config).expect("generous horizon");
            prop_assert_eq!(a.makespan, b.makespan);
            prop_assert_eq!(&a.schedule, &b.schedule);
            prop_assert!(
                (b.energy - k * a.energy).abs() <= 1e-9 * (1.0 + a.energy),
                "energy {} should scale by {} to {}, got {}",
                a.energy, k, k * a.energy, b.energy
            );
        }
    }

    /// The Pareto ladder is monotone — makespans strictly ascend while
    /// energies strictly descend — and re-solving with a rung's energy as
    /// the cap reproduces that rung's makespan, so relaxing the cap from
    /// any rung to a cheaper-makespan rung never lengthens the schedule.
    #[test]
    fn energy_cap_relaxation_is_monotone(spec in arb_spec(5, true)) {
        if let Some(instance) = build_instance(&spec) {
            let front = solve_pareto(&instance, &SolverConfig::exact())
                .expect("generous horizon");
            prop_assume!(front.complete);
            for pair in front.points.windows(2) {
                prop_assert!(pair[0].makespan < pair[1].makespan);
                prop_assert!(pair[0].energy > pair[1].energy);
            }
            let mut last = 0;
            for point in &front.points {
                let capped = solve_exact(&instance, &SolverConfig {
                    objective: Objective::MakespanUnderEnergyCap(point.energy),
                    ..SolverConfig::exact()
                }).expect("front points are feasible under their own energy");
                prop_assume!(capped.proved_optimal);
                prop_assert_eq!(capped.makespan, point.makespan);
                prop_assert!(capped.makespan >= last);
                last = capped.makespan;
            }
        }
    }

    /// `Objective::Makespan` and `MakespanUnderEnergyCap(INFINITY)` are
    /// bit-identical: the energy machinery is transparent when unused.
    #[test]
    fn infinite_energy_cap_is_transparent(spec in arb_spec(6, true)) {
        if let Some(instance) = build_instance(&spec) {
            let plain = solve_exact(&instance, &SolverConfig::exact());
            let capped = solve_exact(&instance, &SolverConfig {
                objective: Objective::MakespanUnderEnergyCap(f64::INFINITY),
                ..SolverConfig::exact()
            });
            match (&plain, &capped) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.makespan, b.makespan);
                    prop_assert_eq!(a.lower_bound, b.lower_bound);
                    prop_assert_eq!(a.proved_optimal, b.proved_optimal);
                    prop_assert_eq!(&a.schedule, &b.schedule);
                    prop_assert!((a.energy - b.energy).abs() <= 1e-12);
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "feasibility diverged: plain ok={} capped ok={}", a.is_ok(), b.is_ok()
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Online dispatcher properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Online dispatch (any policy) always yields feasible schedules and
    /// never beats the proven offline optimum.
    #[test]
    fn online_dispatch_is_feasible_and_dominated(spec in arb_spec(6, true)) {
        use hilp_sched::online::{online_greedy, OnlinePolicy};
        if let Some(instance) = build_instance(&spec) {
            let exact = solve_exact(&instance, &SolverConfig::default())
                .expect("generous horizon");
            prop_assume!(exact.proved_optimal);
            for policy in [
                OnlinePolicy::Fifo,
                OnlinePolicy::LongestFirst,
                OnlinePolicy::ShortestFirst,
                OnlinePolicy::HeterogeneityAware,
            ] {
                // The default horizon is generous enough for greedy too
                // (sequential-sum plus lags), but a dispatcher may still
                // fail on pathological cases; feasibility is only asserted
                // for produced schedules.
                if let Some(schedule) = online_greedy(&instance, policy) {
                    prop_assert!(
                        schedule.verify(&instance).is_empty(),
                        "{policy:?} produced an infeasible schedule"
                    );
                    prop_assert!(schedule.makespan(&instance) >= exact.makespan);
                }
            }
        }
    }
}
