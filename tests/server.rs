//! End-to-end tests of `hilpd` over loopback TCP: protocol behavior,
//! quota enforcement, cancel-on-disconnect, and the core service
//! guarantee — concurrent jobs from any interleaving produce results
//! bit-identical to serial submission.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use hilp_server::{Client, JobSpec, Request, Server, ServerConfig, SubmitRequest, TenantQuota};
use hilp_telemetry::Record;
use proptest::prelude::*;

/// Spawns an in-process daemon on an ephemeral loopback port and returns
/// its address (the daemon thread is left to the process; tests that care
/// about clean shutdown drive it over the wire).
fn spawn_daemon(config: &ServerConfig) -> String {
    let (addr, _handle) = Server::spawn("127.0.0.1:0", config).expect("spawn daemon");
    addr
}

fn spec_job(tenant: &str, cpus: u32, gpu_sms: u32) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_string(),
        job: JobSpec::Spec {
            text: format!("cpus = {cpus}\ngpu_sms = {gpu_sms}\n"),
        },
        deadline_seconds: None,
        per_point_nodes: None,
    }
}

/// Result signature of one job: per-point `(label, makespan bits, gap
/// bits)` — bit-level equality, not approximate.
type Signature = HashMap<u64, (String, u64, u64)>;

fn run_to_signature(addr: &str, request: SubmitRequest) -> Signature {
    let mut client = Client::connect(addr).expect("connect");
    let mut signature = Signature::new();
    let outcome = client
        .run_job(request, |record| {
            if let Record::Point {
                index,
                label,
                makespan_seconds,
                gap,
                ..
            } = record
            {
                signature.insert(
                    *index,
                    (label.clone(), makespan_seconds.to_bits(), gap.to_bits()),
                );
            }
        })
        .expect("job stream");
    assert_eq!(outcome.event, "finished", "{outcome:?}");
    assert_eq!(outcome.points as usize, signature.len(), "{outcome:?}");
    signature
}

#[test]
fn ping_stats_and_malformed_lines_answer_on_one_connection() {
    let addr = spawn_daemon(&ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("ping");

    // A malformed line is answered with a rejected record, and the
    // connection stays usable.
    client
        .send(&Request::Submit(SubmitRequest {
            tenant: "t".to_string(),
            job: JobSpec::Spec {
                text: "not a spec".to_string(),
            },
            deadline_seconds: None,
            per_point_nodes: None,
        }))
        .expect("send");
    match client.read_record().expect("read") {
        Some(Record::Job { event, detail, .. }) => {
            assert_eq!(event, "rejected");
            assert!(!detail.is_empty(), "rejection must say why");
        }
        other => panic!("expected rejected record, got {other:?}"),
    }

    client.send(&Request::Stats).expect("send");
    match client.read_record().expect("read") {
        Some(Record::Job { event, id, .. }) => {
            assert_eq!(event, "stats");
            assert_eq!(id, 0, "no jobs running");
        }
        other => panic!("expected stats record, got {other:?}"),
    }
}

#[test]
fn quota_rejections_name_the_tenant_and_limit() {
    let addr = spawn_daemon(&ServerConfig {
        quota: TenantQuota {
            max_concurrent_jobs: 0,
            ..TenantQuota::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let outcome = client
        .run_job(spec_job("starved", 1, 0), |_| {})
        .expect("stream");
    assert_eq!(outcome.event, "rejected");
    assert!(
        outcome.detail.contains("starved") && outcome.detail.contains("limit 0"),
        "{outcome:?}"
    );
}

#[test]
fn disconnect_cancels_the_job_and_frees_the_tenant_slot() {
    let addr = spawn_daemon(&ServerConfig {
        quota: TenantQuota {
            max_concurrent_jobs: 1,
            ..TenantQuota::default()
        },
        ..ServerConfig::default()
    });
    // Submit and vanish after the accepted record: the daemon must trip
    // the job's cancel token and release the tenant's only slot.
    {
        let mut client = Client::connect(&addr).expect("connect");
        client
            .send(&Request::Submit(SubmitRequest {
                tenant: "solo".to_string(),
                job: JobSpec::Sweep {
                    model: hilp_dse::ModelKind::Hilp,
                    step: 37,
                },
                deadline_seconds: None,
                per_point_nodes: None,
            }))
            .expect("send");
        match client.read_record().expect("read") {
            Some(Record::Job { event, .. }) => assert_eq!(event, "accepted"),
            other => panic!("expected accepted record, got {other:?}"),
        }
    }
    // The slot must come back; a cancelled job that leaked its ledger
    // entry would reject this submission forever.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let mut client = Client::connect(&addr).expect("connect");
        let outcome = client
            .run_job(spec_job("solo", 1, 0), |_| {})
            .expect("stream");
        if outcome.event == "finished" {
            break;
        }
        assert_eq!(outcome.event, "rejected", "{outcome:?}");
        assert!(
            Instant::now() < deadline,
            "tenant slot never freed after disconnect: {outcome:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The service guarantee: any set of jobs submitted concurrently (the
    /// OS schedules the interleaving) produces per-job results
    /// bit-identical to submitting the same jobs serially to a fresh
    /// daemon — sharded threads, fair-share splits, shared memo caches,
    /// and persisted baselines are all result-invariant.
    #[test]
    fn interleaved_submissions_match_serial(
        jobs in prop::collection::vec((1u32..=4, 0u32..=2), 2..5)
    ) {
        // Index 0/1/2 -> no GPU, a small GPU, the paper's default GPU.
        let jobs: Vec<(u32, u32)> = jobs
            .into_iter()
            .map(|(cpus, gpu_idx)| (cpus, [0u32, 4, 16][gpu_idx as usize]))
            .collect();
        let serial_addr = spawn_daemon(&ServerConfig::default());
        let serial: Vec<Signature> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(cpus, gpu))| {
                run_to_signature(&serial_addr, spec_job(&format!("tenant-{i}"), cpus, gpu))
            })
            .collect();

        let concurrent_addr = spawn_daemon(&ServerConfig::default());
        let handles: Vec<_> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(cpus, gpu))| {
                let addr = concurrent_addr.clone();
                std::thread::spawn(move || {
                    run_to_signature(&addr, spec_job(&format!("tenant-{i}"), cpus, gpu))
                })
            })
            .collect();
        let concurrent: Vec<Signature> = handles
            .into_iter()
            .map(|h| h.join().expect("job thread"))
            .collect();

        prop_assert_eq!(serial, concurrent);
    }
}
