//! Telemetry is purely observational: enabling it may never change any
//! solver output, and a drained journal must replay to consistent,
//! monotone incumbent/bound sequences.
//!
//! The bit-identity property is enforced two ways: a proptest over the
//! shared `hilp-testkit` instance strategies (scheduler level) and an
//! end-to-end HILP evaluation (full refinement pipeline, including the
//! dominance-aware sweep). The replay check exercises the journal of a
//! real solve, not a hand-built one.

use proptest::prelude::*;

use hilp_core::{Hilp, TimeStepPolicy};
use hilp_dse::{evaluate_space_with_stats, ModelKind, SweepConfig};
use hilp_sched::{solve, SolverConfig};
use hilp_soc::{Constraints, SocSpec};
use hilp_telemetry::{check_single_solve_replay, Counter, Record, Telemetry};
use hilp_testkit::strategies::{arb_instance, InstanceParams};
use hilp_workloads::{Workload, WorkloadVariant};

/// A solver configuration that exercises both the heuristic and the exact
/// phase on tiny instances, fast enough for a proptest loop.
fn exact_config(telemetry: Telemetry) -> SolverConfig {
    SolverConfig {
        heuristic_starts: 40,
        local_search_passes: 1,
        exact_node_budget: 50_000,
        telemetry,
        ..SolverConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Solving with telemetry enabled must return the exact same outcome
    /// (makespan, schedule, bound, optimality flags) as solving without.
    #[test]
    fn telemetry_never_changes_solver_output(
        instance in arb_instance(InstanceParams::tiny())
    ) {
        let plain = solve(&instance, &exact_config(Telemetry::disabled())).unwrap();
        let tel = Telemetry::enabled();
        let traced = solve(&instance, &exact_config(tel.clone())).unwrap();
        prop_assert_eq!(&plain, &traced);
        // The traced run must actually have recorded something.
        prop_assert!(tel.counter(Counter::HeuristicJobsRequested) > 0);
    }

    /// The journal of any solve replays to monotone incumbent/bound
    /// sequences: incumbents never worsen, proven bounds never loosen,
    /// and no bound ever exceeds the final incumbent.
    #[test]
    fn solve_journals_replay_monotonically(
        instance in arb_instance(InstanceParams::small())
    ) {
        let tel = Telemetry::enabled();
        solve(&instance, &exact_config(tel.clone())).unwrap();
        let journal = tel.journal();
        prop_assert!(journal.records.iter().any(|r| matches!(r, Record::Incumbent { .. })));
        if let Err(e) = check_single_solve_replay(&journal) {
            return Err(proptest::TestCaseError::Fail(e));
        }
    }
}

/// End-to-end: a full HILP evaluation (adaptive refinement, heuristic +
/// exact phases) is bit-identical with telemetry on and off.
#[test]
fn traced_evaluation_is_bit_identical() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let soc = SocSpec::new(2).with_gpu(16);
    let run = |telemetry: Telemetry| {
        Hilp::new(workload.clone(), soc.clone())
            .with_constraints(Constraints::paper_default())
            .with_policy(TimeStepPolicy::sweep())
            .with_solver(SolverConfig {
                heuristic_starts: 60,
                local_search_passes: 1,
                exact_node_budget: 0,
                telemetry,
                ..SolverConfig::default()
            })
            .evaluate()
            .unwrap()
    };
    let plain = run(Telemetry::disabled());
    let tel = Telemetry::enabled();
    let traced = run(tel.clone());
    assert_eq!(plain.makespan_steps, traced.makespan_steps);
    assert_eq!(plain.schedule, traced.schedule);
    assert_eq!(plain.gap, traced.gap);
    assert!(tel.counter(Counter::LevelsSolved) > 0);
}

/// A traced dominance-aware sweep reproduces the untraced sweep exactly
/// and fills the sweep-level counters.
#[test]
fn traced_sweep_is_bit_identical_and_counts() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let socs = vec![
        SocSpec::new(4).with_gpu(16),
        SocSpec::new(2).with_gpu(16),
        SocSpec::new(2),
        SocSpec::new(1),
    ];
    let config = |telemetry: Telemetry| SweepConfig {
        policy: TimeStepPolicy::fixed(10.0),
        solver: SolverConfig {
            heuristic_starts: 30,
            local_search_passes: 1,
            exact_node_budget: 0,
            ..SolverConfig::default()
        },
        threads: 2,
        telemetry,
        ..SweepConfig::default()
    };
    let (plain, _) = evaluate_space_with_stats(
        &workload,
        &socs,
        &Constraints::unconstrained(),
        ModelKind::Hilp,
        &config(Telemetry::disabled()),
    )
    .unwrap();
    let tel = Telemetry::enabled();
    let (traced, stats) = evaluate_space_with_stats(
        &workload,
        &socs,
        &Constraints::unconstrained(),
        ModelKind::Hilp,
        &config(tel.clone()),
    )
    .unwrap();
    assert_eq!(plain, traced, "telemetry changed sweep results");
    assert_eq!(tel.counter(Counter::SweepPoints), socs.len() as u64);
    assert_eq!(
        tel.counter(Counter::LevelsSolved),
        stats.levels_solved as u64
    );
    assert_eq!(
        tel.counter(Counter::InheritedBoundLevels),
        stats.bound_inherited_levels as u64
    );
    // Every solved level emitted a Level record.
    let levels = tel
        .journal()
        .records
        .iter()
        .filter(|r| matches!(r, Record::Level { .. }))
        .count();
    assert_eq!(levels, stats.levels_solved);
}
