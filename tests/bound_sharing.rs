//! Cross-point bound sharing must be invisible in every reported value.
//!
//! The sweep engine (PR: dominance-aware sweeps) reuses proven lower
//! bounds across design points along the dominance lattice, and lifts
//! incumbent schedules from dominated points onto their dominators. Both
//! are pure work-skipping: the properties here pin that a sweep with
//! sharing enabled is *bit-identical* to one with sharing disabled — a
//! stronger guarantee than the "within reported gap" contract the timing
//! harness checks — for random SoC lattices, random workloads, and any
//! thread count, and that lifted schedules are feasible on the dominating
//! SoC by independent re-verification.

use std::sync::Arc;

use proptest::prelude::*;

use hilp_core::{encode, Hilp, TimeStepPolicy};
use hilp_dse::{
    design_space, evaluate_space_recorded, evaluate_space_with_stats, lift_schedule, soc_dominates,
    DominanceLattice, ModelKind, SweepConfig,
};
use hilp_sched::{delta_solve, solve, DeltaPath, InstanceDelta, SolverConfig};
use hilp_soc::{Constraints, DsaSpec, SocSpec};
use hilp_testkit::{arb_constraints, arb_soc, arb_workload};
use hilp_workloads::{Workload, WorkloadVariant};

/// A cheap but non-trivial sweep configuration: multi-start heuristic with
/// local search, no exact phase (the configuration class sharing targets).
fn sharing_config(threads: usize, share: bool) -> SweepConfig {
    SweepConfig {
        policy: TimeStepPolicy {
            initial_seconds: 10.0,
            target_steps: 40,
            refine_factor: 5.0,
            max_refinements: 2,
        },
        solver: SolverConfig {
            heuristic_starts: 16,
            local_search_passes: 1,
            exact_node_budget: 0,
            ..SolverConfig::default()
        },
        threads,
        memoize: true,
        share_bounds: share,
        ..SweepConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharing on vs off agree bit-for-bit on random SoC lattices drawn
    /// from the testkit strategies (random machine multisets give dense,
    /// sparse, and empty dominance relations) under random workloads and
    /// constraint sets.
    #[test]
    fn sharing_never_changes_results_on_random_lattices(
        workload in arb_workload(),
        socs in prop::collection::vec(arb_soc(), 2..5),
        constraints in arb_constraints(),
    ) {
        let shared = evaluate_space_with_stats(
            &workload, &socs, &constraints, ModelKind::Hilp, &sharing_config(2, true));
        let isolated = evaluate_space_with_stats(
            &workload, &socs, &constraints, ModelKind::Hilp, &sharing_config(2, false));
        match (shared, isolated) {
            (Ok((shared_points, stats)), Ok((isolated_points, _))) => {
                prop_assert_eq!(shared_points, isolated_points);
                prop_assert!(stats.bounds_shared);
            }
            // Random workloads can be infeasible (e.g. a phase that fits
            // no cluster under the drawn caps); both paths must agree on
            // the failure too.
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(
                false, "sharing changed the outcome class: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}

/// With sharing enabled, the sweep's results are independent of the
/// worker-thread count (the work queue and bound publication order race,
/// but only affect how much work is skipped, never what is reported).
#[test]
fn shared_sweeps_are_thread_count_independent() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let constraints = Constraints::paper_default();
    // A dominance-rich subsample of the paper's space.
    let socs: Vec<_> = design_space(4.0).into_iter().step_by(31).collect();
    assert!(socs.len() >= 10);
    let single = evaluate_space_with_stats(
        &workload,
        &socs,
        &constraints,
        ModelKind::Hilp,
        &sharing_config(1, true),
    )
    .unwrap();
    for threads in [2, 4] {
        let multi = evaluate_space_with_stats(
            &workload,
            &socs,
            &constraints,
            ModelKind::Hilp,
            &sharing_config(threads, true),
        )
        .unwrap();
        assert_eq!(single.0, multi.0, "{threads} threads changed results");
        assert_eq!(multi.1.threads_used, threads.min(socs.len()));
    }
}

/// A schedule solved on a dominated SoC, lifted onto a dominating SoC's
/// encoded instance, passes full independent feasibility verification
/// there — the property that makes lifted warm incumbents sound.
#[test]
fn lifted_schedules_verify_on_the_dominating_soc() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let constraints = Constraints::paper_default();
    let small = SocSpec::new(2)
        .with_gpu(16)
        .with_dsa(DsaSpec::new(4, "LUD"));
    let big = SocSpec::new(4)
        .with_gpu(16)
        .with_dsa(DsaSpec::new(4, "LUD"))
        .with_dsa(DsaSpec::new(16, "HS"));
    assert!(soc_dominates(&big, &small));

    let step = 2.0;
    let (from, _) = encode(&workload, &small, &constraints, step).unwrap();
    let (to, _) = encode(&workload, &big, &constraints, step).unwrap();
    let eval = Hilp::new(workload, small)
        .with_constraints(constraints)
        .with_policy(TimeStepPolicy::fixed(step))
        .with_solver(SolverConfig {
            heuristic_starts: 16,
            local_search_passes: 1,
            exact_node_budget: 0,
            ..SolverConfig::default()
        })
        .evaluate()
        .unwrap();
    assert!(eval.schedule.verify(&from).is_empty());

    let lifted = lift_schedule(&eval.schedule, &from, &to).expect("superset lift succeeds");
    let violations = lifted.verify(&to);
    assert!(
        violations.is_empty(),
        "lifted schedule violates: {violations:?}"
    );
    assert_eq!(
        lifted.starts, eval.schedule.starts,
        "lifting keeps start times"
    );
}

/// A tightening constraint edit inherits the parent's proven lower bound as
/// a termination certificate, and the certificate is sound: the child's
/// reported bound is never looser than the parent's, the child's makespan
/// never undercuts the inherited bound, and the delta-answered outcome is
/// bit-identical to a from-scratch solve.
#[test]
fn tightening_certificates_are_sound_and_never_loosen() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let soc = SocSpec::new(2)
        .with_gpu(16)
        .with_dsa(DsaSpec::new(4, "LUD"));
    let parent_constraints = Constraints::paper_default();
    let child_constraints = parent_constraints.with_power(520.0);
    let step = 2.0;
    let (parent, _) = encode(&workload, &soc, &parent_constraints, step).unwrap();
    let (child, _) = encode(&workload, &soc, &child_constraints, step).unwrap();
    let delta = InstanceDelta::between(&parent, &child);
    assert!(
        delta.bounds_transfer(),
        "lowering the power cap must classify as a tightening delta"
    );

    // Heuristic-only: the configuration class where the certificate tier is
    // provably transparent.
    let config = SolverConfig {
        heuristic_starts: 16,
        local_search_passes: 1,
        exact_node_budget: 0,
        ..SolverConfig::default()
    };
    let parent_outcome = solve(&parent, &config).unwrap();
    let answered = delta_solve(&parent, &parent_outcome, &child, &config).unwrap();
    let scratch = solve(&child, &config).unwrap();
    assert_eq!(answered.path, DeltaPath::Certificate);
    assert_eq!(
        answered.outcome, scratch,
        "certificate tier changed the result"
    );
    assert!(
        answered.outcome.lower_bound >= parent_outcome.lower_bound,
        "tightening reported a looser bound ({} < {})",
        answered.outcome.lower_bound,
        parent_outcome.lower_bound
    );
    assert!(
        answered.outcome.makespan >= parent_outcome.lower_bound,
        "child makespan {} undercuts the inherited certificate {}",
        answered.outcome.makespan,
        parent_outcome.lower_bound
    );
}

/// Arming an edited sweep with the parent sweep's recorded baseline must be
/// invisible in the results — with dominance sharing on (certificates merge
/// with lattice-inherited bounds) and off (certificates stand alone) — while
/// actually taking the certificate tier on some levels.
#[test]
fn baseline_certificates_compose_with_dominance_sharing() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let parent_constraints = Constraints::paper_default();
    let edited_constraints = parent_constraints.with_power(550.0);
    let socs: Vec<_> = design_space(4.0).into_iter().step_by(61).collect();
    assert!(socs.len() >= 5);

    let (_, _, baseline) = evaluate_space_recorded(
        &workload,
        &socs,
        &parent_constraints,
        ModelKind::Hilp,
        &sharing_config(2, true),
    )
    .unwrap();
    let baseline = Arc::new(baseline);

    let scratch = evaluate_space_with_stats(
        &workload,
        &socs,
        &edited_constraints,
        ModelKind::Hilp,
        &sharing_config(2, true),
    )
    .unwrap();
    for share in [true, false] {
        let armed_config = SweepConfig {
            baseline: Some(Arc::clone(&baseline)),
            ..sharing_config(2, share)
        };
        let (points, stats) = evaluate_space_with_stats(
            &workload,
            &socs,
            &edited_constraints,
            ModelKind::Hilp,
            &armed_config,
        )
        .unwrap();
        assert_eq!(
            points, scratch.0,
            "baseline certificates changed results (share_bounds = {share})"
        );
        assert_eq!(
            stats.delta_identity_points, 0,
            "an edited sweep must not replay points verbatim"
        );
        assert!(
            stats.delta_certified_levels > 0,
            "tightening edit took no certificates (share_bounds = {share})"
        );
    }
}

/// The work queue's loosest-first order is topological for the dominance
/// relation over the full 372-point paper space: every dominator is
/// scheduled before every point it dominates, so bounds flow forward.
#[test]
fn paper_space_order_is_topological_for_dominance() {
    let socs = design_space(4.0);
    let lattice = DominanceLattice::build(&socs);
    let mut position = vec![0usize; socs.len()];
    for (pos, &point) in lattice.order().iter().enumerate() {
        position[point] = pos;
    }
    assert!(
        lattice.edges() > 0,
        "the paper space has dominance structure"
    );
    for point in 0..socs.len() {
        for &dominator in lattice.dominators(point) {
            assert!(
                position[dominator] < position[point],
                "dominator {dominator} ordered after {point}"
            );
        }
    }
}
