//! Shape checks against the paper's figures: who wins, in which direction
//! curves move, and where the paper's qualitative claims must hold.
//!
//! Absolute numbers are not asserted tightly (our substrate is a model of
//! the authors' testbed, not the testbed), but orderings, saturations, and
//! crossovers from the evaluation section are.

use hilp_core::{SolverConfig, TimeStepPolicy};
use hilp_dse::experiments::{
    fig5a_amdahl, fig5b_memory_wall, fig5c_dark_silicon, fig6_wlp_comparison, fig7_space,
};
use hilp_dse::{design_space, ModelKind, SweepConfig};
use hilp_soc::{DsaSpec, SocSpec};
use hilp_workloads::WorkloadVariant;

fn test_config() -> SweepConfig {
    SweepConfig {
        policy: TimeStepPolicy::sweep(),
        solver: SolverConfig {
            heuristic_starts: 80,
            local_search_passes: 2,
            exact_node_budget: 0,
            ..SolverConfig::default()
        },
        threads: 0,
        memoize: true,
        share_bounds: true,
        ..SweepConfig::default()
    }
}

#[test]
fn fig5a_amdahls_law_shape() {
    let result = fig5a_amdahl(&test_config()).unwrap();
    for series in &result.series {
        // Single-CPU SoCs are limited by serial phases; adding cores helps
        // substantially before saturating.
        let s1 = series.points[0].1;
        let s8 = series.points.last().unwrap().1;
        assert!(
            s8 > 1.5 * s1,
            "{}: no Amdahl effect ({s1} -> {s8})",
            series.label
        );
        // Monotone within heuristic tolerance.
        for w in series.points.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.93, "{}: non-monotone", series.label);
        }
    }
    // Bigger GPUs have higher compute limits.
    let limits: Vec<f64> = result.compute_limits.iter().map(|&(_, l)| l).collect();
    assert!(limits[0] < limits[1] && limits[1] < limits[2]);
}

#[test]
fn fig5b_memory_wall_shape() {
    let series = fig5b_memory_wall(&test_config()).unwrap();
    let at = |label_sms: u32, bw: f64| -> f64 {
        series
            .iter()
            .find(|s| s.label.starts_with(&label_sms.to_string()))
            .and_then(|s| s.points.iter().find(|p| p.0 == bw))
            .map(|p| p.1)
            .expect("point exists")
    };
    // Everyone is bandwidth-bound at 50 GB/s: more bandwidth helps all.
    for &sms in &[16u32, 32, 64] {
        assert!(at(sms, 400.0) > at(sms, 50.0), "{sms}-SM never recovers");
    }
    // The 16-SM SoC saturates early (compute-bound by ~100-150 GB/s)...
    assert!(
        at(16, 400.0) <= at(16, 150.0) * 1.10,
        "16-SM should saturate early"
    );
    // ...while the 64-SM SoC is still gaining between 150 and 400 GB/s.
    assert!(
        at(64, 400.0) > at(64, 150.0) * 1.05,
        "64-SM should still be BW-bound"
    );
}

#[test]
fn fig5c_dark_silicon_shape() {
    let series = fig5c_dark_silicon(&test_config()).unwrap();
    let at = |label_sms: u32, power: f64| -> f64 {
        series
            .iter()
            .find(|s| s.label.starts_with(&label_sms.to_string()))
            .and_then(|s| s.points.iter().find(|p| p.0 == power))
            .map(|p| p.1)
            .expect("point exists")
    };
    // The 16-SM SoC reaches its potential at every budget.
    assert!(at(16, 50.0) >= at(16, 400.0) * 0.90);
    // The paper's headline: under 50 W, the 32-SM SoC outperforms the
    // 64-SM SoC because the 64-SM GPU's clock is capped.
    assert!(
        at(32, 50.0) > at(64, 50.0) * 0.99,
        "32-SM {} should beat 64-SM {} at 50 W",
        at(32, 50.0),
        at(64, 50.0)
    );
    // With abundant power the 64-SM SoC wins.
    assert!(at(64, 400.0) > at(32, 400.0));
}

#[test]
fn fig6_wlp_and_speedup_ordering() {
    for variant in [WorkloadVariant::Rodinia, WorkloadVariant::Optimized] {
        let rows = fig6_wlp_comparison(variant, &test_config()).unwrap();
        for row in &rows {
            // WLP ordering: MA = 1 <= HILP <= Gables (within tolerance).
            assert_eq!(row.ma.0, 1.0);
            assert!(row.hilp.0 >= 1.0 - 1e-9);
            assert!(
                row.hilp.0 <= row.gables.0 + 0.3,
                "{variant:?} cpus={}: HILP wlp {} vs Gables {}",
                row.cpus,
                row.hilp.0,
                row.gables.0
            );
            // Speedup ordering. MA is evaluated at near-continuous
            // resolution while HILP pays ceiling-rounding on every phase
            // at the sweep policy's coarse time step, so on serial-bound
            // configurations MA can nominally exceed HILP by the rounding
            // overhead; allow for it.
            assert!(
                row.ma.1 <= row.hilp.1 * 1.20,
                "{variant:?} cpus={}: MA {} vs HILP {}",
                row.cpus,
                row.ma.1,
                row.hilp.1
            );
            assert!(row.hilp.1 <= row.gables.1 * 1.05);
        }
        // MA is flat in CPU count; HILP rises with CPU count.
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!((first.ma.1 - last.ma.1).abs() / first.ma.1 < 0.05);
        assert!(last.hilp.1 > first.hilp.1);
        // With one CPU, Rodinia is CPU-bound: HILP WLP close to 1.
        if variant == WorkloadVariant::Rodinia {
            assert!(first.hilp.0 < 1.6, "1-CPU Rodinia WLP {}", first.hilp.0);
            assert!(last.hilp.0 > 1.5, "8-CPU Rodinia WLP {}", last.hilp.0);
        }
    }
}

/// A reduced Figure 7: a deterministic 65-SoC subsample (every 6th point
/// of the 372-SoC space plus the three headline SoCs).
fn mini_space() -> Vec<SocSpec> {
    let mut socs: Vec<SocSpec> = design_space(4.0).into_iter().step_by(6).collect();
    socs.push(SocSpec::new(1).with_gpu(64)); // MA's pick
    socs.push(
        SocSpec::new(4)
            .with_gpu(4)
            .with_dsa(DsaSpec::new(4, "LUD"))
            .with_dsa(DsaSpec::new(4, "HS"))
            .with_dsa(DsaSpec::new(4, "LMD")),
    ); // Gables' pick
    socs.push(
        SocSpec::new(4)
            .with_gpu(16)
            .with_dsa(DsaSpec::new(16, "LUD"))
            .with_dsa(DsaSpec::new(16, "HS")),
    ); // HILP's pick
    socs.push(SocSpec::new(4).with_gpu(64)); // the GPU-heavy equal-performance point
    socs
}

#[test]
fn fig7_models_disagree_qualitatively() {
    let socs = mini_space();
    let config = test_config();
    let ma = fig7_space(&socs, ModelKind::MultiAmdahl, &config).unwrap();
    let gables = fig7_space(&socs, ModelKind::Gables, &config).unwrap();
    let hilp = fig7_space(&socs, ModelKind::Hilp, &config).unwrap();

    // Quantitative ordering of the best points: MA pessimistic, Gables
    // optimistic (paper: 18.2 < 45.6 < 62.1).
    let ma_best = ma.best();
    let hilp_best = hilp.best();
    let gables_best = gables.best();
    assert!(
        ma_best.speedup < hilp_best.speedup,
        "MA best {} vs HILP best {}",
        ma_best.speedup,
        hilp_best.speedup
    );
    assert!(
        hilp_best.speedup < gables_best.speedup,
        "HILP best {} vs Gables best {}",
        hilp_best.speedup,
        gables_best.speedup
    );

    // Qualitative: MA's best point is GPU-dominated (no WLP -> one big
    // GPU); HILP's best point mixes a moderate GPU with DSAs.
    assert!(
        ma_best.gpu_area_fraction.unwrap_or(0.0) > 0.75,
        "MA best {} is not GPU-dominated",
        ma_best.label
    );
    assert!(
        !hilp_best.soc.dsas.is_empty(),
        "HILP best {} should use DSAs",
        hilp_best.label
    );
}

#[test]
fn fig7_hilp_flagship_matches_gpu_heavy_soc_with_less_area() {
    // Key Insight 3: (c4,g16,d2^16) performs like (c4,g64,d0^0) at ~100
    // mm^2 less area.
    let flagship = SocSpec::new(4)
        .with_gpu(16)
        .with_dsa(DsaSpec::new(16, "LUD"))
        .with_dsa(DsaSpec::new(16, "HS"));
    let gpu_heavy = SocSpec::new(4).with_gpu(64);
    let socs = vec![flagship.clone(), gpu_heavy.clone()];
    let hilp = fig7_space(&socs, ModelKind::Hilp, &test_config()).unwrap();
    let f = &hilp.points[0];
    let g = &hilp.points[1];
    assert!(f.area_mm2 < g.area_mm2);
    assert!(
        f.speedup > g.speedup * 0.85,
        "flagship {} vs GPU-heavy {}",
        f.speedup,
        g.speedup
    );
}
