//! Cross-crate integration tests: the full pipeline from workload + SoC
//! specification through encoding, scheduling, and metric extraction, plus
//! agreement between the two independent solver stacks.

use hilp_core::example2;
use hilp_core::milp_encode::makespan_via_milp;
use hilp_core::{average_wlp, encode, Hilp, SolverConfig, TimeStepPolicy};
use hilp_dse::{evaluate_space, pareto_front, ModelKind, SweepConfig};
use hilp_model::SolveLimits;
use hilp_sched::{solve, solve_exact};
use hilp_soc::{Constraints, DsaSpec, SocSpec};
use hilp_workloads::sda::{sda_workload, SdaScenario};
use hilp_workloads::{Workload, WorkloadVariant};

fn fast_solver() -> SolverConfig {
    SolverConfig {
        heuristic_starts: 60,
        local_search_passes: 2,
        exact_node_budget: 0,
        ..SolverConfig::default()
    }
}

fn fast_sweep() -> SweepConfig {
    SweepConfig {
        policy: TimeStepPolicy::fixed(5.0),
        solver: fast_solver(),
        threads: 0,
        memoize: true,
        share_bounds: true,
        ..SweepConfig::default()
    }
}

// ---------------------------------------------------------------------------
// The worked example, cross-validated across both solver stacks.
// ---------------------------------------------------------------------------

#[test]
fn figure2_agrees_across_scheduler_and_milp() {
    let instance = example2::figure2_instance();
    let sched = solve_exact(&instance, &SolverConfig::default()).unwrap();
    let milp = makespan_via_milp(&instance, &SolveLimits::default()).unwrap();
    assert_eq!(sched.makespan, example2::UNCONSTRAINED_OPTIMUM);
    assert_eq!(milp, example2::UNCONSTRAINED_OPTIMUM);
    assert!(sched.proved_optimal);
}

#[test]
fn figure3_power_constraint_costs_two_seconds() {
    let unconstrained =
        solve_exact(&example2::figure2_instance(), &SolverConfig::default()).unwrap();
    let constrained = solve_exact(&example2::figure3_instance(), &SolverConfig::default()).unwrap();
    assert_eq!(unconstrained.makespan, 7);
    assert_eq!(constrained.makespan, 9);
}

#[test]
fn figure2_wlp_sits_between_ma_and_gables() {
    // Paper Figure 2: MA = 1.0 < HILP = 1.7 < Gables = 2.4.
    let (instance, schedule) = example2::figure2_optimal();
    let hilp_wlp = average_wlp(&schedule, &instance);
    assert!(hilp_wlp > 1.0 && hilp_wlp < 2.4);
    assert!((hilp_wlp - 1.7).abs() < 0.05);
}

// ---------------------------------------------------------------------------
// Full pipeline on real workloads.
// ---------------------------------------------------------------------------

#[test]
fn every_evaluation_produces_a_feasible_schedule() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let socs = [
        SocSpec::new(1),
        SocSpec::new(2).with_gpu(16),
        SocSpec::new(4)
            .with_gpu(64)
            .with_dsa(DsaSpec::new(16, "LUD")),
    ];
    for soc in socs {
        let eval = Hilp::new(workload.clone(), soc)
            .with_constraints(Constraints::paper_default())
            .with_policy(TimeStepPolicy::fixed(5.0))
            .with_solver(fast_solver())
            .evaluate()
            .unwrap();
        assert!(
            eval.schedule.verify(&eval.instance).is_empty(),
            "violations on {:?}",
            eval.schedule.verify(&eval.instance)
        );
        assert!(eval.lower_bound_seconds <= eval.makespan_seconds + 1e-9);
        assert!(eval.gap >= 0.0);
    }
}

#[test]
fn tighter_power_budgets_never_help() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let soc = SocSpec::new(4).with_gpu(64);
    let eval_at = |power: f64| {
        Hilp::new(workload.clone(), soc.clone())
            .with_constraints(Constraints::unconstrained().with_power(power))
            .with_policy(TimeStepPolicy::fixed(5.0))
            .with_solver(fast_solver())
            .evaluate()
            .unwrap()
            .makespan_seconds
    };
    let tight = eval_at(60.0);
    let loose = eval_at(600.0);
    // Heuristic noise aside, more power can only shorten the schedule.
    assert!(loose <= tight * 1.10, "loose {loose} vs tight {tight}");
}

#[test]
fn tighter_bandwidth_budgets_never_help() {
    let workload = Workload::rodinia(WorkloadVariant::Optimized);
    let soc = SocSpec::new(4).with_gpu(64);
    let eval_at = |bw: f64| {
        Hilp::new(workload.clone(), soc.clone())
            .with_constraints(Constraints::unconstrained().with_bandwidth(bw))
            .with_policy(TimeStepPolicy::fixed(5.0))
            .with_solver(fast_solver())
            .evaluate()
            .unwrap()
            .makespan_seconds
    };
    assert!(eval_at(400.0) <= eval_at(50.0) * 1.10);
}

#[test]
fn encoding_then_solving_respects_the_core_cap() {
    // Two CPUs: at most two cores' worth of phases concurrently, even
    // though parallel compute modes exist.
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let (instance, _) = encode(
        &workload,
        &SocSpec::new(2),
        &Constraints::unconstrained(),
        5.0,
    )
    .unwrap();
    let outcome = solve(&instance, &fast_solver()).unwrap();
    assert!(outcome.schedule.verify(&instance).is_empty());
}

// ---------------------------------------------------------------------------
// Baselines and DSE plumbing.
// ---------------------------------------------------------------------------

#[test]
fn model_ordering_holds_across_a_mini_space() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let socs = vec![
        SocSpec::new(2).with_gpu(16),
        SocSpec::new(4).with_gpu(64),
        SocSpec::new(4)
            .with_gpu(16)
            .with_dsa(DsaSpec::new(16, "LUD"))
            .with_dsa(DsaSpec::new(16, "HS")),
    ];
    let config = fast_sweep();
    let constraints = Constraints::paper_default();
    let ma = evaluate_space(
        &workload,
        &socs,
        &constraints,
        ModelKind::MultiAmdahl,
        &config,
    )
    .unwrap();
    let hilp = evaluate_space(&workload, &socs, &constraints, ModelKind::Hilp, &config).unwrap();
    let gables =
        evaluate_space(&workload, &socs, &constraints, ModelKind::Gables, &config).unwrap();
    for i in 0..socs.len() {
        assert!(
            ma[i].speedup <= hilp[i].speedup * 1.05,
            "{}: MA {} vs HILP {}",
            socs[i].label(),
            ma[i].speedup,
            hilp[i].speedup
        );
        assert!(
            hilp[i].speedup <= gables[i].speedup * 1.05,
            "{}: HILP {} vs Gables {}",
            socs[i].label(),
            hilp[i].speedup,
            gables[i].speedup
        );
        assert_eq!(ma[i].avg_wlp, 1.0);
        assert!(hilp[i].avg_wlp <= gables[i].avg_wlp + 0.25);
    }
}

#[test]
fn pareto_front_of_design_points_is_dominance_free() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let socs = vec![
        SocSpec::new(1),
        SocSpec::new(1).with_gpu(4),
        SocSpec::new(2).with_gpu(16),
        SocSpec::new(4).with_gpu(64),
        SocSpec::new(4).with_gpu(4),
    ];
    let points = evaluate_space(
        &workload,
        &socs,
        &Constraints::unconstrained(),
        ModelKind::Hilp,
        &fast_sweep(),
    )
    .unwrap();
    let front = pareto_front(&points);
    assert!(!front.is_empty());
    for &i in &front {
        for (j, p) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates = p.area_mm2 <= points[i].area_mm2
                && p.speedup >= points[i].speedup
                && (p.area_mm2 < points[i].area_mm2 || p.speedup > points[i].speedup);
            assert!(
                !dominates,
                "{} dominates front member {}",
                p.label, points[i].label
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The SDA extension end to end.
// ---------------------------------------------------------------------------

#[test]
fn sda_pipeline_overlaps_samples() {
    let workload = sda_workload(2, SdaScenario::Baseline);
    let mut soc = SocSpec::new(1).with_gpu(8);
    for key in hilp_workloads::sda::DS_KEYS {
        soc = soc.with_dsa(DsaSpec::new(1, key));
    }
    let eval = Hilp::new(workload, soc)
        .with_policy(TimeStepPolicy::fixed(1.0))
        .with_solver(SolverConfig::default())
        .evaluate()
        .unwrap();
    assert!(eval.schedule.verify(&eval.instance).is_empty());
    // Two samples must overlap: strictly faster than 2x one sample's
    // critical path, and with WLP above 1.
    assert!(eval.avg_wlp > 1.0);
}

#[test]
fn sda_scenarios_beat_the_baseline() {
    let results = hilp_dse::experiments::fig10_sda(
        2,
        &SweepConfig {
            solver: SolverConfig::default(),
            ..fast_sweep()
        },
    )
    .unwrap();
    assert_eq!(results.len(), 3);
    let baseline = results[0].makespan_seconds;
    let faster_cpu = results[1].makespan_seconds;
    let bigger_gpu = results[2].makespan_seconds;
    assert!(
        faster_cpu < baseline,
        "2x CPU {faster_cpu} should beat baseline {baseline}"
    );
    assert!(
        bigger_gpu < baseline,
        "2x GPU {bigger_gpu} should beat baseline {baseline}"
    );
}

// ---------------------------------------------------------------------------
// The synthetic mobile workload (generality beyond Rodinia).
// ---------------------------------------------------------------------------

#[test]
fn mobile_workload_evaluates_under_a_phone_budget() {
    let workload = hilp_workloads::mobile::mobile_workload();
    let soc = SocSpec::new(2)
        .with_gpu(4)
        .with_dsa(DsaSpec::new(2, "NN"))
        .with_dsa(DsaSpec::new(2, "ISP"));
    let eval = Hilp::new(workload, soc)
        .with_constraints(
            Constraints::unconstrained()
                .with_power(15.0)
                .with_bandwidth(100.0),
        )
        .with_policy(TimeStepPolicy::fixed(0.5))
        .with_solver(fast_solver())
        .evaluate()
        .unwrap();
    assert!(eval.schedule.verify(&eval.instance).is_empty());
    // Accelerators plus parallelism must clearly beat sequential execution.
    assert!(eval.speedup > 5.0, "speedup {}", eval.speedup);
    assert!(eval.avg_wlp > 1.2, "wlp {}", eval.avg_wlp);
    // The peak power respects the 15 W budget.
    let peak = eval
        .schedule
        .power_profile(&eval.instance)
        .into_iter()
        .fold(0.0f64, f64::max);
    assert!(peak <= 15.0 + 1e-6, "peak {peak} W");
}

#[test]
fn mobile_dsas_offload_the_heaviest_kernels() {
    // With DSAs for NN and ISP, those compute phases leave the GPU.
    let workload = hilp_workloads::mobile::mobile_workload();
    let soc = SocSpec::new(2)
        .with_gpu(8)
        .with_dsa(DsaSpec::new(4, "NN"))
        .with_dsa(DsaSpec::new(4, "ISP"));
    let eval = Hilp::new(workload, soc)
        .with_policy(TimeStepPolicy::fixed(0.5))
        .with_solver(fast_solver())
        .evaluate()
        .unwrap();
    let reports = hilp_core::report::application_reports(&eval);
    for name in ["NN", "ISP"] {
        let app = reports.iter().find(|r| r.application == name).unwrap();
        let compute = app
            .phases
            .iter()
            .find(|p| p.phase.ends_with("compute"))
            .unwrap();
        assert!(
            compute.machine.starts_with("dsa"),
            "{name}.compute ran on {}",
            compute.machine
        );
    }
}

// ---------------------------------------------------------------------------
// Scale stress: the engine handles consolidated workloads (90 tasks).
// ---------------------------------------------------------------------------

#[test]
fn ninety_task_consolidated_workload_solves_feasibly() {
    let workload = Workload::rodinia(WorkloadVariant::Default).with_copies(3);
    assert_eq!(workload.num_phases(), 90);
    let soc = SocSpec::new(4)
        .with_gpu(64)
        .with_dsa(DsaSpec::new(16, "LUD"))
        .with_dsa(DsaSpec::new(16, "HS"));
    let eval = Hilp::new(workload, soc)
        .with_constraints(Constraints::paper_default())
        .with_policy(TimeStepPolicy::fixed(2.0))
        .with_solver(SolverConfig {
            heuristic_starts: 30,
            local_search_passes: 1,
            exact_node_budget: 0,
            ..SolverConfig::default()
        })
        .evaluate()
        .unwrap();
    assert!(eval.schedule.verify(&eval.instance).is_empty());
    assert!(
        eval.avg_wlp > 2.0,
        "consolidation should overlap: {}",
        eval.avg_wlp
    );
    assert!(eval.lower_bound_seconds <= eval.makespan_seconds + 1e-9);
}
