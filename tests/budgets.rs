//! Limits-focused tests: anytime solving under node budgets, deadlines,
//! and cancellation, across every layer of the pipeline.
//!
//! The anytime contract under test:
//!
//! 1. **Soundness of truncated results** — a budget-truncated solve still
//!    returns a feasible incumbent whose reported lower bound never exceeds
//!    the true (brute-force) optimum, which in turn never exceeds the
//!    incumbent's makespan.
//! 2. **Determinism** — node-only budgets are deterministic: identical
//!    budgets give bit-identical outcomes for every `heuristic_threads`
//!    value, and a generous budget is bit-identical to an unbudgeted solve.
//! 3. **Graceful degradation, never failure** — online dispatchers under
//!    admission storms stop admitting but keep what they committed; core
//!    refinement returns the coarsest completed level; sweeps report every
//!    design point.

use std::time::Duration;

use proptest::prelude::*;

use hilp_core::{Budget, BudgetKind, CancelToken, Hilp, TimeStepPolicy};
use hilp_dse::{evaluate_space_with_stats, ModelKind, SweepBudgets, SweepConfig};
use hilp_sched::online::{online_greedy_budgeted, OnlineOutcome, OnlinePolicy};
use hilp_sched::{solve, Instance, InstanceBuilder, MachineId, Mode, SolverConfig};
use hilp_soc::{Constraints, SocSpec};
use hilp_testkit::{
    arb_instance, brute_force_schedule, check_budgeted, CheckStats, InstanceParams, OracleConfig,
};
use hilp_workloads::{Workload, WorkloadVariant};

// ---------------------------------------------------------------------------
// Soundness of truncated results (vs the brute-force oracle).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A budget-truncated solve still satisfies the bounds sandwich around
    /// the exhaustive optimum: `lower_bound <= optimum <= makespan`.
    #[test]
    fn truncated_results_are_sound(
        instance in arb_instance(InstanceParams::tiny()),
        node_budget in 1u64..=64,
    ) {
        let config = SolverConfig {
            budget: Budget::unlimited().with_node_limit(node_budget),
            ..SolverConfig::exact()
        };
        // A budgeted solve may legitimately exhaust a tight horizon; that
        // is a quality outcome, not a soundness violation.
        let Ok(outcome) = solve(&instance, &config) else { return Ok(()); };
        prop_assert!(outcome.schedule.verify(&instance).is_empty());
        prop_assert!(outcome.lower_bound <= outcome.makespan);
        if let Some(bf) = brute_force_schedule(&instance) {
            prop_assert!(
                outcome.makespan >= bf.makespan,
                "incumbent {} beats the exhaustive optimum {}",
                outcome.makespan, bf.makespan
            );
            prop_assert!(
                outcome.lower_bound <= bf.makespan,
                "lower bound {} exceeds the exhaustive optimum {}",
                outcome.lower_bound, bf.makespan
            );
        }
        if let Some(partial) = outcome.partial() {
            prop_assert_eq!(partial.lower_bound, f64::from(outcome.lower_bound));
            prop_assert_eq!(partial.gap, outcome.gap());
            prop_assert!(partial.incumbent.verify(&instance).is_empty());
        } else {
            prop_assert_eq!(outcome.truncated, None);
        }
    }

    /// The testkit's budgeted differential check (the same battery the fuzz
    /// driver runs) finds no disagreement on random tiny instances.
    #[test]
    fn budgeted_differential_battery_agrees(
        instance in arb_instance(InstanceParams::tiny()),
        node_budget in 1u64..=128,
    ) {
        let oracle = OracleConfig::default();
        let mut stats = CheckStats::default();
        let checked = check_budgeted(&instance, node_budget, &oracle.solver, &mut stats);
        prop_assert!(checked.is_ok(), "{}", checked.unwrap_err());
    }
}

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical node budgets give bit-identical outcomes regardless of the
    /// heuristic worker count: the budget is an allocation, not a race.
    #[test]
    fn node_budgets_are_thread_deterministic(
        instance in arb_instance(InstanceParams::tiny()),
        node_budget in 1u64..=96,
    ) {
        // Budget clones share consumption meters, so each solve gets a
        // freshly minted budget rather than a clone of a spent one.
        let config_for = |threads: usize| SolverConfig {
            heuristic_threads: threads,
            budget: Budget::unlimited().with_node_limit(node_budget),
            ..SolverConfig::exact()
        };
        let single = solve(&instance, &config_for(1));
        for threads in [2usize, 4] {
            let parallel = solve(&instance, &config_for(threads));
            // The *result* is thread-count independent; executed-work
            // counts in `stats` may race (workers overshoot a bound-
            // termination stop differently), so they are excluded.
            match (&single, &parallel) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.schedule, &b.schedule, "threads=1 vs threads={}", threads);
                    prop_assert_eq!(a.makespan, b.makespan);
                    prop_assert_eq!(a.lower_bound, b.lower_bound);
                    prop_assert_eq!(a.proved_optimal, b.proved_optimal);
                    prop_assert_eq!(a.truncated, b.truncated);
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "feasibility differs across thread counts"),
            }
        }
    }

    /// A generous node budget is transparent: bit-identical to the
    /// unbudgeted solve, with no truncation reported.
    #[test]
    fn generous_budgets_are_transparent(instance in arb_instance(InstanceParams::tiny())) {
        let plain = solve(&instance, &SolverConfig::exact());
        let budgeted = solve(&instance, &SolverConfig {
            budget: Budget::unlimited().with_node_limit(u64::MAX / 2),
            ..SolverConfig::exact()
        });
        match (&plain, &budgeted) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(b.truncated, None);
                prop_assert_eq!(a, b);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "feasibility differs with a generous budget"),
        }
    }
}

// ---------------------------------------------------------------------------
// Online dispatch under admission storms.
// ---------------------------------------------------------------------------

/// An admission storm: `n` independent single-mode tasks all released at
/// t = 0 onto two machines — every dispatch event is an admission decision.
fn storm_instance(n: usize) -> Instance {
    let mut b = InstanceBuilder::new();
    b.add_machine("cpu");
    b.add_machine("dsa");
    for t in 0..n {
        b.add_task(
            format!("req{t}"),
            vec![Mode::on(MachineId(0), 2), Mode::on(MachineId(1), 3)],
        );
    }
    b.build().expect("storm instance is well-formed")
}

#[test]
fn admission_storm_stops_at_the_admission_budget() {
    let instance = storm_instance(40);
    let mut last_dispatched = 0usize;
    for admissions in [1u64, 5, 17, 39] {
        let budget = Budget::unlimited().with_node_limit(admissions);
        match online_greedy_budgeted(&instance, OnlinePolicy::Fifo, &budget) {
            OnlineOutcome::Truncated { dispatched, kind } => {
                assert_eq!(kind, BudgetKind::Nodes);
                assert!(
                    dispatched as u64 <= admissions,
                    "dispatched {dispatched} tasks on a {admissions}-admission budget"
                );
                assert!(
                    dispatched >= last_dispatched,
                    "larger budgets must never admit less"
                );
                last_dispatched = dispatched;
            }
            other => panic!("a {admissions}-admission budget cannot place 40 tasks: {other:?}"),
        }
    }
    // With room for every admission the storm completes and verifies.
    let outcome = online_greedy_budgeted(
        &instance,
        OnlinePolicy::Fifo,
        &Budget::unlimited().with_node_limit(40),
    );
    match outcome {
        OnlineOutcome::Complete(schedule) => {
            assert!(schedule.verify(&instance).is_empty());
        }
        other => panic!("a 40-admission budget must complete the 40-task storm: {other:?}"),
    }
}

#[test]
fn admission_storm_respects_cancellation_and_deadlines() {
    let instance = storm_instance(24);
    for policy in [
        OnlinePolicy::Fifo,
        OnlinePolicy::LongestFirst,
        OnlinePolicy::ShortestFirst,
        OnlinePolicy::HeterogeneityAware,
    ] {
        let cancel = CancelToken::new();
        cancel.cancel();
        let cancelled =
            online_greedy_budgeted(&instance, policy, &Budget::unlimited().with_cancel(cancel));
        assert_eq!(
            cancelled,
            OnlineOutcome::Truncated {
                dispatched: 0,
                kind: BudgetKind::Cancelled
            },
            "a pre-cancelled dispatcher must not admit anything"
        );

        let expired = online_greedy_budgeted(
            &instance,
            policy,
            &Budget::unlimited().with_deadline(Duration::ZERO),
        );
        match expired {
            OnlineOutcome::Truncated {
                kind: BudgetKind::Deadline,
                ..
            } => {}
            other => panic!("an already-expired deadline must truncate dispatch: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// A crafted hard instance: verified incumbent, bounded gap, within budget.
// ---------------------------------------------------------------------------

/// Three machines, four 4-task chains with cross-machine mode tradeoffs —
/// enough combinatorial slack that a few hundred nodes cannot close the gap.
fn hard_instance() -> Instance {
    let mut b = InstanceBuilder::new();
    for m in 0..3 {
        b.add_machine(format!("m{m}"));
    }
    let mut prev = Vec::new();
    for chain in 0..4 {
        let mut ids = Vec::new();
        for t in 0..4 {
            let skew = ((chain + t) % 3) as u32;
            ids.push(b.add_task(
                format!("c{chain}t{t}"),
                vec![
                    Mode::on(MachineId(0), 3 + skew),
                    Mode::on(MachineId(1), 4),
                    Mode::on(MachineId(2), 2 + 2 * skew),
                ],
            ));
        }
        for pair in ids.windows(2) {
            b.add_precedence_lagged(pair[0], pair[1], 1);
        }
        prev = ids;
    }
    let _ = prev;
    b.build().expect("hard instance is well-formed")
}

#[test]
fn hard_instance_returns_a_verified_incumbent_within_budget() {
    let instance = hard_instance();
    let node_budget = 200u64;
    let budget = Budget::unlimited().with_node_limit(node_budget);
    let outcome = solve(
        &instance,
        &SolverConfig {
            budget: budget.clone(),
            ..SolverConfig::exact()
        },
    )
    .expect("the horizon is generous");

    assert_eq!(outcome.truncated, Some(BudgetKind::Nodes));
    assert!(outcome.schedule.verify(&instance).is_empty());
    assert!(outcome.lower_bound <= outcome.makespan);
    assert!(outcome.gap() >= 0.0 && outcome.gap().is_finite());
    // The heuristic's phase-entry allocation never overdraws; branch and
    // bound records the one charge that trips the meter, so the spend may
    // exceed the limit by exactly that final node.
    assert!(
        budget.nodes_spent() <= node_budget + 1,
        "spend {} overshoots the {node_budget}-node limit by more than the tripping charge",
        budget.nodes_spent()
    );
    let partial = outcome.partial().expect("truncated solves are partial");
    assert_eq!(partial.exhausted, BudgetKind::Nodes);
    assert!(partial.incumbent.verify(&instance).is_empty());
}

// ---------------------------------------------------------------------------
// Core refinement under budgets.
// ---------------------------------------------------------------------------

#[test]
fn refinement_degrades_to_a_coarser_level_under_a_tight_budget() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let soc = SocSpec::new(2).with_gpu(16);

    let budgeted = Hilp::new(workload.clone(), soc.clone())
        .with_solver(SolverConfig {
            budget: Budget::unlimited().with_node_limit(20),
            ..SolverConfig::default()
        })
        .with_policy(TimeStepPolicy::validation())
        .evaluate()
        .expect("budgeted evaluation still returns a result");
    assert!(budgeted.makespan_seconds > 0.0);
    assert!(budgeted.schedule.verify(&budgeted.instance).is_empty());
    assert!(budgeted.lower_bound_seconds <= budgeted.makespan_seconds + 1e-9);

    // A generous budget is bit-identical to the unbudgeted evaluation.
    let plain = Hilp::new(workload.clone(), soc.clone())
        .evaluate()
        .expect("unbudgeted evaluation succeeds");
    let generous = Hilp::new(workload, soc)
        .with_solver(SolverConfig {
            budget: Budget::unlimited().with_node_limit(u64::MAX / 2),
            ..SolverConfig::default()
        })
        .evaluate()
        .expect("generously budgeted evaluation succeeds");
    assert_eq!(generous.truncated, None);
    assert_eq!(plain, generous);
}

// ---------------------------------------------------------------------------
// Sweeps through the public API: budgets degrade points, never drop them.
// ---------------------------------------------------------------------------

#[test]
fn budgeted_sweep_reports_every_point_and_counts_truncations() {
    let workload = Workload::rodinia(WorkloadVariant::Default);
    let socs = vec![
        SocSpec::new(1),
        SocSpec::new(2).with_gpu(16),
        SocSpec::new(4).with_gpu(64),
    ];
    let config = SweepConfig {
        budgets: SweepBudgets {
            per_point_nodes: Some(3),
            sweep_deadline: None,
            cancel: None,
        },
        ..SweepConfig::default()
    };
    let (points, stats) = evaluate_space_with_stats(
        &workload,
        &socs,
        &Constraints::unconstrained(),
        ModelKind::Hilp,
        &config,
    )
    .expect("budgeted sweeps degrade, never fail");

    assert_eq!(
        points.len(),
        socs.len(),
        "budgets must never drop a design point"
    );
    for point in &points {
        assert!(point.makespan_seconds > 0.0);
        assert!(point.speedup > 0.0);
    }
    assert_eq!(stats.point_truncations.len(), socs.len());
    assert_eq!(
        stats.truncated_points,
        stats.point_truncations.iter().flatten().count()
    );
    assert!(
        stats.truncated_points > 0,
        "three nodes per point cannot finish a full HILP solve"
    );
    assert_eq!(stats.cache_hits, 0, "memoization must be off under budgets");
}
