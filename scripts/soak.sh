#!/usr/bin/env bash
# Randomized soak of hilpd: concurrent submit / budgeted-submit /
# mid-stream-kill / reconnect churn for DURATION seconds, then a final
# health check. Nightly CI runs this non-gating and uploads the
# artifacts (daemon journal + log, per-operation trace) either way.
#
# Usage: scripts/soak.sh [DURATION_SECONDS] [ADDR]
#
# Expects target/release/{hilpd,hilp} to exist
# (cargo build --release -p hilp-server --bins).
set -euo pipefail

DURATION="${1:-60}"
ADDR="${2:-127.0.0.1:7171}"
BIN=target/release
ART=soak-artifacts
SEED="${RANDOM_SEED:-$$}"
RANDOM=$((SEED))

mkdir -p "$ART"
: > "$ART/ops.log"
echo "soak: seed $SEED, ${DURATION}s against $ADDR" | tee -a "$ART/ops.log"

"$BIN/hilpd" --listen "$ADDR" --journal "$ART/hilpd-journal.jsonl" \
  > "$ART/hilpd.log" 2>&1 &
HILPD_PID=$!
cleanup() {
  kill "$HILPD_PID" 2>/dev/null || true
}
trap cleanup EXIT

for _ in $(seq 1 50); do
  grep -q 'listening on' "$ART/hilpd.log" 2>/dev/null && break
  sleep 0.2
done
grep -q 'listening on' "$ART/hilpd.log" || {
  echo "soak: FAIL: hilpd never came up" >&2
  cat "$ART/hilpd.log" >&2
  exit 1
}

# Pre-soak warm-up so mid-soak repeats can hit the persisted baseline.
"$BIN/hilp" submit "$ADDR" --tenant soak-warm --step 93 --quiet \
  >> "$ART/ops.log" 2>&1

END=$((SECONDS + DURATION))
OPS=0
declare -a PIDS=()
while [ "$SECONDS" -lt "$END" ]; do
  OPS=$((OPS + 1))
  TENANT="soak-$((RANDOM % 4))"
  STEP=$((47 + RANDOM % 140))
  case $((RANDOM % 4)) in
    0)  # Plain submit, streamed to the op log.
        "$BIN/hilp" submit "$ADDR" --tenant "$TENANT" --step "$STEP" --quiet \
          >> "$ART/ops.log" 2>&1 || true
        ;;
    1)  # Warm repeat: same job spec as the warm-up, should replay.
        "$BIN/hilp" submit "$ADDR" --tenant soak-warm --step 93 --quiet \
          >> "$ART/ops.log" 2>&1 || true
        ;;
    2)  # Budgeted submit in the background (concurrency pressure).
        "$BIN/hilp" submit "$ADDR" --tenant "$TENANT" --step "$STEP" \
          --per-point-budget $((1 + RANDOM % 64)) --quiet \
          >> "$ART/ops.log" 2>&1 &
        PIDS+=("$!")
        ;;
    3)  # Mid-stream kill: the client vanishes, cancel-on-disconnect
        # must reap the job server-side.
        timeout -s KILL 0.2 \
          "$BIN/hilp" watch "$ADDR" --tenant "$TENANT" --step "$STEP" \
          >> "$ART/ops.log" 2>&1 || true
        ;;
  esac
  # Bound the background-client herd.
  if [ "${#PIDS[@]}" -ge 8 ]; then
    wait "${PIDS[0]}" 2>/dev/null || true
    PIDS=("${PIDS[@]:1}")
  fi
done
for pid in "${PIDS[@]:-}"; do
  [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
done

# Final health check, gating inside the soak: the daemon must still
# answer, the warm job must still replay, and shutdown must be clean.
echo "soak: $OPS operations issued; final health check" | tee -a "$ART/ops.log"
FINAL=$("$BIN/hilp" submit "$ADDR" --tenant soak-final --step 93 --quiet | tail -1)
echo "$FINAL" | tee -a "$ART/ops.log"
case "$FINAL" in
  *" finished: "*) ;;
  *) echo "soak: FAIL: final job did not finish: $FINAL" >&2; exit 1 ;;
esac
"$BIN/hilp" shutdown "$ADDR" --quiet
if ! timeout 30 tail --pid="$HILPD_PID" -f /dev/null; then
  echo "soak: FAIL: hilpd did not exit after shutdown" >&2
  exit 1
fi
trap - EXIT
echo "soak: PASS ($OPS operations over ${DURATION}s)" | tee -a "$ART/ops.log"
