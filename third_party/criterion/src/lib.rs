//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the benchmarking surface its benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, and `BenchmarkId`. Instead
//! of criterion's statistical machinery this harness runs a short warmup
//! plus a capped number of timed iterations and prints the mean
//! wall-clock time per iteration — enough to track relative performance
//! in logs without registry dependencies.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id combining a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    iters: u32,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup iteration, then the timed batch.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(self.iters.max(1));
    }
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.mean_ns;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "us")
    } else {
        (ns, "ns")
    };
    println!(
        "bench: {name:<50} {value:>10.3} {unit}/iter ({} iters)",
        bencher.iters
    );
}

/// The benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

/// How many timed iterations a configured sample size maps to. Criterion
/// samples are statistical batches; this stand-in caps the count so heavy
/// report-style benches stay affordable in logs.
fn iters_for(sample_size: usize) -> u32 {
    u32::try_from(sample_size.clamp(1, 10)).expect("clamped")
}

impl Criterion {
    /// Sets the nominal sample size (clamped; see `iters_for`).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepts CLI arguments for compatibility; filtering is not
    /// implemented in the offline stand-in.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: iters_for(self.sample_size),
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(id, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a function against one input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iters: iters_for(self.sample_size),
            mean_ns: 0.0,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.0), &bencher);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: iters_for(self.sample_size),
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("stub/add", |b| b.iter(|| 2 + 2));
        let mut group = c.benchmark_group("stub/group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(5), &5, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(4);
        targets = target
    }

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }
}
