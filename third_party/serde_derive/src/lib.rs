//! Vendored offline stand-in for `serde_derive`.
//!
//! Emits empty marker-trait impls matching the vendored no-op `serde`
//! crate. Written against `proc_macro` directly (no `syn`/`quote`, which
//! are unavailable offline); supports the plain non-generic structs and
//! enums this workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input.clone() {
        // Attribute groups, doc comments, and punctuation are skipped.
        if let TokenTree::Ident(ident) = tt {
            let s = ident.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in the derive input");
}

/// Rejects generic types: the offline stub only needs (and supports)
/// concrete ones, and failing loudly beats emitting broken impls.
fn assert_no_generics(input: &TokenStream, name: &str) {
    let mut after_name = false;
    for tt in input.clone() {
        match &tt {
            TokenTree::Ident(ident) if ident.to_string() == name => after_name = true,
            TokenTree::Punct(p) if after_name => {
                if p.as_char() == '<' {
                    panic!("serde_derive stub: generic type `{name}` is not supported offline");
                }
                // Any other punctuation (`{`, `(`, `;`) ends the header.
                return;
            }
            TokenTree::Group(_) if after_name => return,
            _ => {}
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_no_generics(&input, &name);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_no_generics(&input, &name);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
