//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `boxed`, range and tuple
//! strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::bool::ANY`, [`Just`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest: failing inputs are *not shrunk* (the
//! panic reports the assertion only), there is no persistence of failing
//! seeds (any `.proptest-regressions` files are ignored), and case seeds
//! derive deterministically from the test's module path and name so runs
//! are reproducible without a registry of failures.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Runner plumbing.
// ---------------------------------------------------------------------------

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising the generators meaningfully.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; the case is retried, not failed.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// The RNG handed to strategies (a seeded [`SmallRng`]).
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds the case RNG from a test identity hash and a case index.
    #[must_use]
    pub fn new(test_hash: u64, case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            test_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// FNV-1a over a string, used to derive per-test seeds.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// The Strategy trait and combinators.
// ---------------------------------------------------------------------------

/// A recipe for generating values, mirroring `proptest::strategy::Strategy`
/// (generation only; no shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric ranges are strategies, as in proptest.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The `prop::` strategy namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// An inclusive length range for collection strategies.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty vec size range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Generates `Vec`s of `element` with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`](fn@vec).
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Generates `None` or `Some(inner)` with equal probability.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(2) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Generates fair booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Fair boolean strategy, mirroring `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.below(2) == 1
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_hash =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut executed: u32 = 0;
                let mut attempt: u64 = 0;
                let max_attempts = u64::from(config.cases).saturating_mul(10).max(1);
                while executed < config.cases && attempt < max_attempts {
                    attempt += 1;
                    let mut proptest_rng = $crate::TestRng::new(test_hash, attempt);
                    $(let $arg =
                        $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", attempt, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default())
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*);
    };
}

/// Asserts a condition, failing the current case (not the process) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality, failing the current case on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality, failing the current case on violation.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Rejects the current input (the case is retried with fresh values).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1..=6u32, y in -2.0f64..2.0) {
            prop_assert!((1..=6).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn flat_map_threads_dependencies(
            (n, v) in (1..=4usize).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0..10u32, n..=n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0..100u32) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(b in prop::bool::ANY, o in prop::option::of(1..=3u8)) {
            prop_assert!(usize::from(b) <= 1);
            if let Some(v) = o {
                prop_assert!((1..=3).contains(&v));
            }
        }
    }

    #[test]
    fn boxed_strategies_unify_types() {
        let choose_some: BoxedStrategy<Option<u8>> = prop::option::of(3..=8u8).boxed();
        let none: BoxedStrategy<Option<u8>> = Just(None).boxed();
        let mut rng = crate::TestRng::new(crate::fnv1a("boxed"), 1);
        for s in [choose_some, none] {
            for _ in 0..10 {
                if let Some(v) = s.generate(&mut rng) {
                    assert!((3..=8).contains(&v));
                }
            }
        }
    }
}
