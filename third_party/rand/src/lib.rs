//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen`, and
//! `Rng::gen_range` over primitive ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets — so streams are high quality
//! and fully deterministic across platforms.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can instantiate themselves from a seed.
pub trait SeedableRng: Sized {
    /// Seeds the generator from a single `u64` (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// The core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from raw bits without parameters (rand's `Standard`
/// distribution, flattened into the value type for simplicity).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1): the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be sampled from (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from this range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Rejection-free (biased by < 2^-64) uniform integer in `[0, span)`.
fn uniform_below(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sampling range");
    // 128-bit multiply-shift: maps the full u64 stream onto [0, span).
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Expands a 64-bit seed into independent state words (Vigna's SplitMix64).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..1.75);
            assert!((0.25..1.75).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn integer_samples_cover_inclusive_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(1..=4u8);
            seen[usize::from(v) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = rng.gen_range(-3i8..=3);
            assert!((-3..=3).contains(&v));
        }
    }
}
