//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io. The
//! workspace uses serde only as *marker* capability — `#[derive]`s on
//! spec/workload types and `T: Serialize + Deserialize` bounds for
//! downstream format crates — and never invokes an actual serializer, so
//! the vendored traits carry no methods. Swapping the real serde back in
//! requires only restoring the registry dependency: call sites are
//! source-compatible.

#![warn(missing_docs)]

/// Marker for types that can be serialized (no-op offline stand-in).
pub trait Serialize {}

/// Marker for types that can be deserialized (no-op offline stand-in).
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input,
/// mirroring serde's blanket `DeserializeOwned` alias.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
