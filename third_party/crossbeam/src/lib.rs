//! Vendored offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the one API it uses: `crossbeam::thread::scope` with
//! crossbeam's `Result`-returning signature and spawn closures that
//! receive the scope (for nested spawns). Since Rust 1.63 this is a thin
//! wrapper over `std::thread::scope`.

#![warn(missing_docs)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A panic payload propagated out of a scoped thread.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle passed to [`scope`] closures and to every spawned
    /// thread's closure, allowing nested spawns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, matching
        /// crossbeam's `|scope| ...` signature (commonly ignored as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread, mirroring crossbeam's join API.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        ///
        /// # Errors
        ///
        /// Returns the payload when the thread panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. Returns `Ok(result)` when no spawned thread
    /// panicked; unlike crossbeam, a panicking child propagates the panic
    /// on scope exit (std semantics), so the `Err` arm is vestigial but
    /// kept for signature compatibility.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in practice (see above).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        super::thread::scope(|scope| {
            for &x in &data {
                let counter = &counter;
                scope.spawn(move |_| counter.fetch_add(x, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn join_returns_thread_results() {
        let out = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 41 + 1);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_spawns_compile_and_run() {
        let n = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
